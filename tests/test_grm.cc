/**
 * @file
 * Tests for genotype synthesis and the GRM kernel: naive-oracle
 * equality, symmetry, population structure, missing-data handling.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grm/grm.h"
#include "simdata/genotypes.h"
#include "util/thread_pool.h"

namespace gb {
namespace {

/** Naive GRM straight from the definition. */
std::vector<double>
naiveGrm(const GenotypeMatrix& m)
{
    const u32 n = m.num_individuals;
    const u32 s = m.num_sites;
    // Observed frequencies.
    std::vector<double> p(s);
    for (u32 site = 0; site < s; ++site) {
        u64 sum = 0;
        u64 called = 0;
        for (u32 i = 0; i < n; ++i) {
            if (m.at(i, site) == kMissingGenotype) continue;
            sum += static_cast<u64>(m.at(i, site));
            ++called;
        }
        p[site] = called ? static_cast<double>(sum) / (2.0 * called)
                         : 0.0;
    }
    std::vector<double> g(static_cast<size_t>(n) * n, 0.0);
    for (u32 i = 0; i < n; ++i) {
        for (u32 j = 0; j < n; ++j) {
            double acc = 0.0;
            for (u32 site = 0; site < s; ++site) {
                const double denom = 2.0 * p[site] * (1.0 - p[site]);
                if (denom <= 1e-9) continue;
                const i8 gi = m.at(i, site);
                const i8 gj = m.at(j, site);
                const double zi =
                    gi == kMissingGenotype
                        ? 0.0
                        : (gi - 2.0 * p[site]) / std::sqrt(denom);
                const double zj =
                    gj == kMissingGenotype
                        ? 0.0
                        : (gj - 2.0 * p[site]) / std::sqrt(denom);
                acc += zi * zj;
            }
            g[static_cast<size_t>(i) * n + j] = acc / s;
        }
    }
    return g;
}

TEST(Genotypes, ShapeAndRange)
{
    GenotypeParams p;
    p.num_individuals = 40;
    p.num_sites = 300;
    const auto m = generateGenotypes(p);
    EXPECT_EQ(m.genotypes.size(), 40u * 300u);
    for (i8 g : m.genotypes) {
        EXPECT_TRUE(g == kMissingGenotype || (g >= 0 && g <= 2));
    }
    for (double f : m.allele_freq) {
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 0.5);
    }
}

TEST(Genotypes, Deterministic)
{
    GenotypeParams p;
    p.num_individuals = 10;
    p.num_sites = 50;
    const auto a = generateGenotypes(p);
    const auto b = generateGenotypes(p);
    EXPECT_EQ(a.genotypes, b.genotypes);
}

TEST(Genotypes, RejectsDegenerate)
{
    GenotypeParams p;
    p.num_individuals = 1;
    EXPECT_THROW(generateGenotypes(p), InputError);
}

TEST(Grm, MatchesNaiveOracle)
{
    GenotypeParams gp;
    gp.num_individuals = 70; // crosses the 64-wide tile boundary
    gp.num_sites = 400;
    gp.missing_rate = 0.01;
    const auto m = generateGenotypes(gp);

    ThreadPool pool(2);
    const auto result = computeGrm(m, pool);
    const auto oracle = naiveGrm(m);

    ASSERT_EQ(result.n, 70u);
    for (u32 i = 0; i < result.n; ++i) {
        for (u32 j = 0; j < result.n; ++j) {
            EXPECT_NEAR(result.at(i, j),
                        oracle[static_cast<size_t>(i) * result.n + j],
                        1e-4)
                << i << "," << j;
        }
    }
}

TEST(Grm, Symmetric)
{
    GenotypeParams gp;
    gp.num_individuals = 65;
    gp.num_sites = 200;
    const auto m = generateGenotypes(gp);
    ThreadPool pool(3);
    const auto result = computeGrm(m, pool);
    for (u32 i = 0; i < result.n; ++i) {
        for (u32 j = i + 1; j < result.n; ++j) {
            EXPECT_FLOAT_EQ(result.at(i, j), result.at(j, i));
        }
    }
}

TEST(Grm, DiagonalNearOneForUnrelatedIndividuals)
{
    // With one homogeneous population, diagonal entries of the GRM
    // concentrate around 1 (standard population-genetics property).
    GenotypeParams gp;
    gp.num_individuals = 300; // large N tempers the 1/(p(1-p))
                              // inflation from rare variants
    gp.num_sites = 3000;
    gp.num_populations = 1;
    gp.missing_rate = 0.0;
    const auto m = generateGenotypes(gp);
    ThreadPool pool(2);
    const auto result = computeGrm(m, pool);
    double diag_mean = 0.0;
    double offdiag_mean = 0.0;
    for (u32 i = 0; i < result.n; ++i) {
        diag_mean += result.at(i, i);
        for (u32 j = 0; j < result.n; ++j) {
            if (j != i) offdiag_mean += result.at(i, j);
        }
    }
    diag_mean /= result.n;
    offdiag_mean /= static_cast<double>(result.n) * (result.n - 1);
    EXPECT_NEAR(diag_mean, 1.0, 0.1);
    EXPECT_NEAR(offdiag_mean, 0.0, 0.05);
}

TEST(Grm, PopulationStructureRaisesWithinPopSimilarity)
{
    // Individuals from the same latent population should be more
    // related on average than cross-population pairs.
    GenotypeParams gp;
    gp.num_individuals = 80;
    gp.num_sites = 2000;
    gp.num_populations = 2;
    gp.fst = 0.15;
    gp.seed = 99;
    const auto m = generateGenotypes(gp);
    ThreadPool pool(2);
    const auto result = computeGrm(m, pool);

    // Recover the latent assignment by clustering on the first
    // individual's relatedness sign.
    std::vector<bool> cluster(result.n);
    for (u32 i = 0; i < result.n; ++i) {
        cluster[i] = result.at(0, i) > 0;
    }
    double within = 0.0;
    double across = 0.0;
    u64 nw = 0;
    u64 na = 0;
    for (u32 i = 0; i < result.n; ++i) {
        for (u32 j = i + 1; j < result.n; ++j) {
            if (cluster[i] == cluster[j]) {
                within += result.at(i, j);
                ++nw;
            } else {
                across += result.at(i, j);
                ++na;
            }
        }
    }
    ASSERT_GT(nw, 0u);
    ASSERT_GT(na, 0u);
    EXPECT_GT(within / nw, across / na);
}

TEST(Grm, SingleThreadAndMultiThreadAgree)
{
    GenotypeParams gp;
    gp.num_individuals = 33;
    gp.num_sites = 150;
    const auto m = generateGenotypes(gp);
    ThreadPool pool1(1);
    ThreadPool pool4(4);
    const auto a = computeGrm(m, pool1);
    const auto b = computeGrm(m, pool4);
    EXPECT_EQ(a.g, b.g);
}

} // namespace
} // namespace gb
