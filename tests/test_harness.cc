/**
 * @file
 * Unit tests for the bench harness option parser. parseStrict() is
 * the testable core: it throws InputError instead of exiting and
 * reports --help/-h through Options::help, so every path here runs
 * without touching the process.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness.h"

namespace gb::bench {
namespace {

Options
parseArgs(std::vector<const char*> args,
          DatasetSize default_size = DatasetSize::kSmall)
{
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("bench_test"));
    for (const char* arg : args) {
        argv.push_back(const_cast<char*>(arg));
    }
    return Options::parseStrict(static_cast<int>(argv.size()),
                                argv.data(), default_size);
}

TEST(ParseStrict, DefaultsApplied)
{
    const Options opt = parseArgs({}, DatasetSize::kTiny);
    EXPECT_EQ(opt.size, DatasetSize::kTiny);
    EXPECT_EQ(opt.threads, 0u);
    EXPECT_TRUE(opt.kernels.empty());
    EXPECT_TRUE(opt.cache_dir.empty());
    EXPECT_EQ(opt.engine, Engine::kScalar);
    EXPECT_EQ(opt.schedule, SchedulePolicy::kDynamic);
    EXPECT_TRUE(opt.json_path.empty());
    EXPECT_FALSE(opt.help);
}

TEST(ParseStrict, ParsesEveryFlag)
{
    const Options opt = parseArgs({"--size=large", "--threads=8",
                                   "--kernels=bsw,phmm",
                                   "--cache-dir=/tmp/cache",
                                   "--engine=simd",
                                   "--schedule=steal",
                                   "--json=/tmp/out.json"});
    EXPECT_EQ(opt.size, DatasetSize::kLarge);
    EXPECT_EQ(opt.threads, 8u);
    EXPECT_EQ(opt.kernels,
              (std::vector<std::string>{"bsw", "phmm"}));
    EXPECT_EQ(opt.cache_dir, "/tmp/cache");
    EXPECT_EQ(opt.engine, Engine::kSimd);
    EXPECT_EQ(opt.schedule, SchedulePolicy::kSteal);
    EXPECT_EQ(opt.json_path, "/tmp/out.json");
    EXPECT_FALSE(opt.help);
}

TEST(ParseStrict, HelpSetsFlagInsteadOfExiting)
{
    // Regression: --help used to std::exit(0) inside parseStrict,
    // contradicting its "throws instead of exiting" contract. It must
    // now report through the help field — on both spellings.
    EXPECT_TRUE(parseArgs({"--help"}).help);
    EXPECT_TRUE(parseArgs({"-h"}).help);
}

TEST(ParseStrict, HelpWinsOverLaterArguments)
{
    // Everything after --help is unparsed: even an invalid flag must
    // not throw, matching "the caller decides what to print".
    Options opt;
    EXPECT_NO_THROW(opt = parseArgs({"--help", "--definitely-bogus"}));
    EXPECT_TRUE(opt.help);
    // But flags before --help are still applied.
    opt = parseArgs({"--threads=3", "-h"});
    EXPECT_TRUE(opt.help);
    EXPECT_EQ(opt.threads, 3u);
}

TEST(ParseStrict, ThrowsOnUnknownFlag)
{
    EXPECT_THROW(parseArgs({"--bogus"}), InputError);
    EXPECT_THROW(parseArgs({"positional"}), InputError);
}

TEST(ParseStrict, SuggestsNearMissFlag)
{
    try {
        parseArgs({"--thread=8"});
        FAIL() << "expected InputError";
    } catch (const InputError& e) {
        EXPECT_NE(std::string(e.what()).find("--threads"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParseStrict, RejectsBadValues)
{
    EXPECT_THROW(parseArgs({"--size=huge"}), InputError);
    EXPECT_THROW(parseArgs({"--threads=-1"}), InputError);
    EXPECT_THROW(parseArgs({"--threads=abc"}), InputError);
    EXPECT_THROW(parseArgs({"--schedule=guided"}), InputError);
    EXPECT_THROW(parseArgs({"--json="}), InputError);
    EXPECT_THROW(parseArgs({"--cache-dir="}), InputError);
}

/**
 * Satellite contract: every flag the parser accepts appears in
 * knownFlags() (so did-you-mean can suggest it) and in the usage
 * text, and knownFlags() lists nothing the parser rejects.
 */
TEST(KnownFlags, MatchesParserAndUsage)
{
    // A valid sample argument for each flag knownFlags() lists.
    const std::vector<std::pair<std::string, const char*>> samples = {
        {"--size", "--size=tiny"},
        {"--threads", "--threads=2"},
        {"--kernels", "--kernels=bsw"},
        {"--cache-dir", "--cache-dir=/tmp/c"},
        {"--engine", "--engine=scalar"},
        {"--schedule", "--schedule=steal"},
        {"--json", "--json=/tmp/j.json"},
        {"--help", "--help"},
    };
    const auto& flags = knownFlags();
    ASSERT_EQ(flags.size(), samples.size())
        << "knownFlags() and this test's sample list are out of sync; "
           "a new flag needs a sample argument here";
    const std::string usage = usageText();
    for (const auto& [flag, sample] : samples) {
        EXPECT_NE(std::find(flags.begin(), flags.end(), flag),
                  flags.end())
            << flag << " missing from knownFlags()";
        EXPECT_NO_THROW(parseArgs({sample}))
            << sample << " rejected by parseStrict";
        EXPECT_NE(usage.find(flag), std::string::npos)
            << flag << " missing from usage text";
    }
}

TEST(KnownFlags, ListsNothingTheParserRejects)
{
    for (const std::string& flag : knownFlags()) {
        // Pass each flag with a plausible value; none may be unknown.
        const std::string arg =
            flag == "--help"        ? flag
            : flag == "--size"      ? flag + "=tiny"
            : flag == "--engine"    ? flag + "=scalar"
            : flag == "--schedule"  ? flag + "=dynamic"
            : flag == "--threads"   ? flag + "=1"
                                    : flag + "=x";
        EXPECT_NO_THROW(parseArgs({arg.c_str()})) << arg;
    }
}

TEST(Harness, SizeNameRoundTrip)
{
    EXPECT_STREQ(sizeName(DatasetSize::kTiny), "tiny");
    EXPECT_STREQ(sizeName(DatasetSize::kSmall), "small");
    EXPECT_STREQ(sizeName(DatasetSize::kLarge), "large");
}

TEST(Harness, OrNAFormatsCounters)
{
    EXPECT_EQ(orNA(-1.0), "n/a");
    EXPECT_EQ(orNA(1.2345, 2), "1.23");
    EXPECT_EQ(orNA(0.0, 1), "0.0");
}

} // namespace
} // namespace gb::bench
