/**
 * @file
 * Tests for suffix-array construction and the FMD-index / SMEM search,
 * including property tests against brute-force oracles.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "index/fm_index.h"
#include "index/suffix_array.h"
#include "io/dna.h"
#include "util/rng.h"

namespace gb {
namespace {

std::vector<u8>
textOf(const std::string& s)
{
    std::vector<u8> t;
    for (char c : s) t.push_back(static_cast<u8>(c - 'a' + 1));
    t.push_back(0);
    return t;
}

TEST(SuffixArray, Banana)
{
    // "banana$": suffixes sorted: $, a$, ana$, anana$, banana$, na$,
    // nana$ -> SA = 6 5 3 1 0 4 2.
    const auto t = textOf("banana");
    const auto sa = buildSuffixArray(t, 27);
    const std::vector<u32> expected{6, 5, 3, 1, 0, 4, 2};
    EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, SingleChar)
{
    const auto t = textOf("a");
    const auto sa = buildSuffixArray(t, 27);
    const std::vector<u32> expected{1, 0};
    EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, RejectsMissingSentinel)
{
    std::vector<u8> t{1, 2, 3};
    EXPECT_THROW(buildSuffixArray(t, 4), InputError);
}

TEST(SuffixArray, RejectsInteriorSentinel)
{
    std::vector<u8> t{1, 0, 2, 0};
    EXPECT_THROW(buildSuffixArray(t, 4), InputError);
}

class SuffixArrayRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(SuffixArrayRandom, MatchesNaiveOracle)
{
    Rng rng(GetParam());
    const u64 len = 1 + rng.below(400);
    const u32 alphabet = 2 + static_cast<u32>(rng.below(5));
    std::vector<u8> t(len + 1);
    for (u64 i = 0; i < len; ++i) {
        t[i] = 1 + static_cast<u8>(rng.below(alphabet));
    }
    t[len] = 0;
    const auto fast = buildSuffixArray(t, alphabet + 2);
    const auto naive = buildSuffixArrayNaive(t);
    EXPECT_EQ(fast, naive) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixArrayRandom,
                         ::testing::Range(1, 25));

TEST(SuffixArray, RepetitiveText)
{
    // Highly repetitive input stresses the SA-IS recursion.
    std::string s;
    for (int i = 0; i < 50; ++i) s += "abcab";
    const auto t = textOf(s);
    EXPECT_EQ(buildSuffixArray(t, 27), buildSuffixArrayNaive(t));
}

TEST(Bwt, InvertibleViaLf)
{
    // Reconstruct the text from its BWT using LF mapping.
    const auto t = textOf("mississippi");
    const auto sa = buildSuffixArray(t, 27);
    const auto bwt = bwtFromSuffixArray(t, sa);

    const u32 n = static_cast<u32>(t.size());
    std::vector<u32> counts(32, 0);
    for (u8 c : bwt) ++counts[c];
    std::vector<u32> c_arr(33, 0);
    for (u32 c = 0; c < 32; ++c) c_arr[c + 1] = c_arr[c] + counts[c];

    auto occ = [&](u8 sym, u32 i) {
        u32 k = 0;
        for (u32 j = 0; j < i; ++j) k += bwt[j] == sym;
        return k;
    };

    // Walk backwards from the sentinel row.
    std::vector<u8> rebuilt(n);
    u32 row = 0; // row of the sentinel-starting suffix... SA[0] = n-1
    for (u32 step = 0; step < n; ++step) {
        const u8 sym = bwt[row];
        rebuilt[n - 1 - step] = sym;
        row = c_arr[sym] + occ(sym, row);
    }
    // rebuilt, rotated so sentinel is last, equals t.
    std::vector<u8> expected = t;
    std::rotate(expected.begin(), expected.end() - 1, expected.end());
    EXPECT_EQ(rebuilt, expected);
}

// ---------------------------------------------------------------------
// FM-index

/** Count occurrences of pattern on both strands by brute force. */
u64
bruteCount(const std::string& ref, const std::string& pattern)
{
    auto countIn = [](const std::string& text, const std::string& pat) {
        u64 n = 0;
        size_t pos = 0;
        while ((pos = text.find(pat, pos)) != std::string::npos) {
            ++n;
            ++pos;
        }
        return n;
    };
    return countIn(ref, pattern) +
           countIn(ref, reverseComplement(pattern));
}

std::string
randomDna(Rng& rng, u64 len)
{
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
}

TEST(FmIndex, CountSimple)
{
    const std::string ref = "ACGTACGTAC";
    FmIndex fm = FmIndex::build(ref);
    // "ACGT" occurs twice forward; rc("ACGT") = "ACGT" occurs twice ->
    // both-strand count 4.
    EXPECT_EQ(fm.count("ACGT"), 4u);
    EXPECT_EQ(fm.count("AAAA"), bruteCount(ref, "AAAA"));
    EXPECT_EQ(fm.count("ACGTACGTAC"), 1u + 0u);
}

TEST(FmIndex, RejectsEmptyAndNonAcgt)
{
    EXPECT_THROW(FmIndex::build(""), InputError);
    EXPECT_THROW(FmIndex::build("ACGN"), InputError);
}

class FmCountRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FmCountRandom, MatchesBruteForce)
{
    Rng rng(1000 + GetParam());
    // Small alphabet-rich text so patterns repeat.
    const std::string ref = randomDna(rng, 200 + rng.below(300));
    FmIndex fm = FmIndex::build(ref);
    for (int trial = 0; trial < 30; ++trial) {
        const u64 plen = 1 + rng.below(8);
        std::string pattern;
        if (rng.chance(0.7) && ref.size() > plen) {
            const u64 pos = rng.below(ref.size() - plen);
            pattern = ref.substr(pos, plen);
        } else {
            pattern = randomDna(rng, plen);
        }
        EXPECT_EQ(fm.count(pattern), bruteCount(ref, pattern))
            << "pattern " << pattern;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmCountRandom, ::testing::Range(1, 13));

TEST(FmIndex, LocateFindsAllForwardSites)
{
    Rng rng(55);
    const std::string ref = randomDna(rng, 500);
    FmIndex fm = FmIndex::build(ref);

    const std::string pattern = ref.substr(100, 12);
    // Backward-search interval via count path, then locate.
    NullProbe probe;
    std::vector<u8> codes = encodeDna(pattern);
    std::array<BiInterval, 4> ok;
    BiInterval ik = fm.baseInterval(codes.back());
    ik.begin = 0;
    ik.end = static_cast<i32>(codes.size());
    for (i64 i = static_cast<i64>(codes.size()) - 2; i >= 0; --i) {
        fm.extendBackward(ik, ok, probe);
        ik = ok[codes[i]];
    }
    ASSERT_GT(ik.s, 0u);

    const auto hits = fm.locate(ik);
    EXPECT_EQ(hits.size(), ik.s);
    bool found_origin = false;
    for (const auto& hit : hits) {
        ASSERT_LE(hit.pos + pattern.size(), ref.size());
        const std::string at_site = ref.substr(hit.pos, pattern.size());
        if (hit.reverse) {
            EXPECT_EQ(reverseComplement(at_site), pattern);
        } else {
            EXPECT_EQ(at_site, pattern);
            if (hit.pos == 100) found_origin = true;
        }
    }
    EXPECT_TRUE(found_origin);
}

// Brute-force SMEM oracle: all maximal exact matches through x that are
// supermaximal (not contained in a longer match through another span).
struct OracleMem
{
    i32 begin;
    i32 end;

    bool operator==(const OracleMem&) const = default;
    bool operator<(const OracleMem& o) const
    {
        return begin < o.begin || (begin == o.begin && end < o.end);
    }
};

std::vector<OracleMem>
oracleSmems(const std::string& ref, const std::string& query, i32 x)
{
    const i32 len = static_cast<i32>(query.size());
    // match[b][e]: query[b, e) occurs in ref (either strand)?
    auto occurs = [&](i32 b, i32 e) {
        return bruteCount(ref, query.substr(b, e - b)) > 0;
    };
    // Collect maximal matches covering x: extend right maximally for
    // each b <= x, then check left-maximality.
    std::vector<OracleMem> mems;
    for (i32 b = 0; b <= x; ++b) {
        if (!occurs(b, x + 1)) continue;
        i32 e = x + 1;
        while (e < len && occurs(b, e + 1)) ++e;
        // Left-maximal: cannot extend b-1 keeping this e.
        if (b > 0 && occurs(b - 1, e)) continue;
        mems.push_back({b, e});
    }
    // Keep supermaximal only (not contained in another).
    std::vector<OracleMem> out;
    for (const auto& m : mems) {
        bool contained = false;
        for (const auto& o : mems) {
            if (&o != &m && o.begin <= m.begin && m.end <= o.end) {
                contained = true;
            }
        }
        if (!contained) out.push_back(m);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

class SmemRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(SmemRandom, MatchesOracle)
{
    Rng rng(2000 + GetParam());
    const std::string ref = randomDna(rng, 300);
    FmIndex fm = FmIndex::build(ref);

    // Query: a mutated slice of the reference so matches are nontrivial.
    const u64 qlen = 30 + rng.below(40);
    const u64 start = rng.below(ref.size() - qlen);
    std::string query = ref.substr(start, qlen);
    for (auto& c : query) {
        if (rng.chance(0.08)) c = "ACGT"[rng.below(4)];
    }

    const std::vector<u8> codes = encodeDna(query);
    const i32 x = static_cast<i32>(rng.below(qlen));

    NullProbe probe;
    std::vector<Smem> mems;
    fm.smemsAt(std::span<const u8>(codes), x, 1, mems, probe);

    std::vector<OracleMem> got;
    for (const auto& m : mems) got.push_back({m.begin, m.end});
    std::sort(got.begin(), got.end());

    const auto expected = oracleSmems(ref, query, x);
    EXPECT_EQ(got, expected) << "seed " << GetParam() << " x=" << x;

    // Every reported interval size matches brute-force counting.
    for (const auto& m : mems) {
        EXPECT_EQ(m.s,
                  bruteCount(ref, query.substr(m.begin, m.length())));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmemRandom, ::testing::Range(1, 21));

TEST(FmIndex, SmemsCoverWholeReadOnPerfectMatch)
{
    Rng rng(77);
    const std::string ref = randomDna(rng, 1000);
    FmIndex fm = FmIndex::build(ref);
    const std::string query = ref.substr(200, 100);
    const auto codes = encodeDna(query);

    NullProbe probe;
    std::vector<Smem> mems;
    fm.smems(std::span<const u8>(codes), 19, mems, probe);
    ASSERT_FALSE(mems.empty());
    // The full-length match must be among the SMEMs.
    bool full = false;
    for (const auto& m : mems) {
        if (m.begin == 0 && m.end == 100) full = true;
    }
    EXPECT_TRUE(full);
}

/** Brute-force both-strand count within `z` substitutions. */
u64
bruteCountInexact(const std::string& ref, const std::string& pattern,
                  u32 z)
{
    auto hamWithin = [&](const std::string& text, size_t pos) {
        u32 mismatches = 0;
        for (size_t i = 0; i < pattern.size(); ++i) {
            mismatches += text[pos + i] != pattern[i];
            if (mismatches > z) return false;
        }
        return true;
    };
    u64 n = 0;
    const std::string rc = reverseComplement(ref);
    for (const std::string* text : {&ref, &rc}) {
        if (text->size() < pattern.size()) continue;
        for (size_t pos = 0; pos + pattern.size() <= text->size();
             ++pos) {
            n += hamWithin(*text, pos);
        }
    }
    return n;
}

class FmInexactRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FmInexactRandom, MatchesBruteForce)
{
    Rng rng(5000 + GetParam());
    const std::string ref = randomDna(rng, 150 + rng.below(200));
    FmIndex fm = FmIndex::build(ref);
    for (int trial = 0; trial < 10; ++trial) {
        const u64 plen = 4 + rng.below(8);
        std::string pattern;
        if (rng.chance(0.7) && ref.size() > plen) {
            pattern = ref.substr(rng.below(ref.size() - plen), plen);
        } else {
            pattern = randomDna(rng, plen);
        }
        const u32 z = static_cast<u32>(rng.below(3));
        EXPECT_EQ(fm.countInexact(pattern, z),
                  bruteCountInexact(ref, pattern, z))
            << "pattern " << pattern << " z=" << z;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmInexactRandom,
                         ::testing::Range(1, 11));

TEST(FmIndex, InexactZeroEqualsExact)
{
    Rng rng(66);
    const std::string ref = randomDna(rng, 400);
    FmIndex fm = FmIndex::build(ref);
    for (int trial = 0; trial < 20; ++trial) {
        const std::string pattern =
            ref.substr(rng.below(ref.size() - 10), 8);
        EXPECT_EQ(fm.countInexact(pattern, 0), fm.count(pattern));
    }
}

TEST(FmIndex, InexactIsMonotoneInBudget)
{
    Rng rng(67);
    const std::string ref = randomDna(rng, 500);
    FmIndex fm = FmIndex::build(ref);
    const std::string pattern = ref.substr(123, 10);
    u64 prev = 0;
    for (u32 z = 0; z <= 3; ++z) {
        const u64 n = fm.countInexact(pattern, z);
        EXPECT_GE(n, prev);
        prev = n;
    }
}

TEST(FmIndex, InexactFindsMutatedSite)
{
    Rng rng(68);
    const std::string ref = randomDna(rng, 2000);
    FmIndex fm = FmIndex::build(ref);
    std::string pattern = ref.substr(700, 20);
    pattern[10] = pattern[10] == 'A' ? 'C' : 'A';
    // A 20-mer with one mutation: absent exactly, present within 1.
    EXPECT_EQ(fm.count(pattern), 0u);
    EXPECT_GE(fm.countInexact(pattern, 1), 1u);
}

TEST(FmIndex, SaveLoadRoundTrip)
{
    Rng rng(70);
    const std::string ref = randomDna(rng, 700);
    const FmIndex original = FmIndex::build(ref, 128);

    std::stringstream buffer;
    original.save(buffer);
    const FmIndex loaded = FmIndex::load(buffer);

    EXPECT_EQ(loaded.referenceLength(), original.referenceLength());
    EXPECT_EQ(loaded.blockLen(), 128u);
    // Behavioural equality on queries.
    for (int trial = 0; trial < 20; ++trial) {
        const std::string pattern =
            ref.substr(rng.below(ref.size() - 12), 10);
        EXPECT_EQ(loaded.count(pattern), original.count(pattern));
    }
    const auto codes = encodeDna(ref.substr(50, 80));
    NullProbe probe;
    std::vector<Smem> a, b;
    original.smems(std::span<const u8>(codes), 19, a, probe);
    loaded.smems(std::span<const u8>(codes), 19, b, probe);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].k, b[i].k);
        EXPECT_EQ(a[i].s, b[i].s);
    }
}

TEST(FmIndex, LoadRejectsCorruptData)
{
    std::stringstream empty;
    EXPECT_THROW(FmIndex::load(empty), InputError);

    std::stringstream bad_magic;
    const u32 junk = 0xdeadbeef;
    bad_magic.write(reinterpret_cast<const char*>(&junk), 4);
    bad_magic.write(reinterpret_cast<const char*>(&junk), 4);
    EXPECT_THROW(FmIndex::load(bad_magic), InputError);

    // Truncated valid stream.
    Rng rng(71);
    const FmIndex fm = FmIndex::build(randomDna(rng, 100));
    std::stringstream full;
    fm.save(full);
    const std::string bytes = full.str();
    std::stringstream truncated(
        bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(FmIndex::load(truncated), InputError);
}

TEST(FmIndex, OccBlocksAreCompact)
{
    Rng rng(88);
    const std::string ref = randomDna(rng, 4096);
    FmIndex fm = FmIndex::build(ref);
    // 88 bytes per 64 symbols over 2n+2 symbols.
    EXPECT_LE(fm.occBytes(), (2 * 4096 + 2 + 128) / 64 * 88 + 88);
}

TEST(FmIndex, OccAllBlockAlignedChargesExactlyOneAccess)
{
    Rng rng(89);
    const std::string ref = randomDna(rng, 1000);
    const FmIndex fm = FmIndex::build(ref);
    const u32 block = fm.blockLen();

    // A block-aligned position resolves entirely from the checkpoint:
    // exactly one probe access (the counts), zero BWT bytes.
    CountingProbe aligned;
    fm.occAll(u64{2} * block, aligned);
    EXPECT_EQ(aligned.counts()[OpClass::kLoad], 1u);
    EXPECT_EQ(aligned.loadBytes(), FmIndex::kAlphabet * sizeof(u32));

    // An unaligned position adds one BWT access of `rem` bytes.
    CountingProbe unaligned;
    fm.occAll(u64{2} * block + 5, unaligned);
    EXPECT_EQ(unaligned.counts()[OpClass::kLoad], 2u);
    EXPECT_EQ(unaligned.loadBytes(),
              FmIndex::kAlphabet * sizeof(u32) + 5);

    // Both must agree with a plain byte count from block start.
    const auto at = fm.occAll(u64{2} * block + 5, unaligned);
    auto expect = fm.occAll(u64{2} * block, unaligned);
    for (u64 j = 2 * block; j < 2 * block + 5; ++j) {
        ++expect[fm.bwtData()[j]];
    }
    EXPECT_EQ(at, expect);
}

} // namespace
} // namespace gb
