/**
 * @file
 * Tests for DNA encoding, FASTA/FASTQ parsing (including malformed
 * input), CIGAR machinery and alignment-record serialization.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/alignment.h"
#include "io/cigar.h"
#include "io/dna.h"
#include "io/fasta.h"
#include "io/vcf.h"

namespace gb {
namespace {

TEST(Dna, EncodeDecodeRoundTrip)
{
    const std::string s = "ACGTNacgtn";
    const auto codes = encodeDna(s);
    EXPECT_EQ(decodeDna(codes), "ACGTNACGTN");
    EXPECT_EQ(codes[0], 0);
    EXPECT_EQ(codes[3], 3);
    EXPECT_EQ(codes[4], kBaseN);
}

TEST(Dna, ReverseComplement)
{
    EXPECT_EQ(reverseComplement(std::string_view("ACGT")), "ACGT");
    EXPECT_EQ(reverseComplement(std::string_view("AACC")), "GGTT");
    EXPECT_EQ(reverseComplement(std::string_view("AN")), "NT");
    // Involution.
    const std::string s = "ACCGTTGAAN";
    EXPECT_EQ(reverseComplement(reverseComplement(s)), s);
}

TEST(Dna, Validation)
{
    EXPECT_TRUE(isValidDna("ACGTN"));
    EXPECT_TRUE(isValidDna(""));
    EXPECT_FALSE(isValidDna("ACGU"));
    EXPECT_FALSE(isValidDna("ACG T"));
}

TEST(Fasta, ParsesMultiRecordMultiLine)
{
    std::istringstream in(">r1 description\nACGT\nACGT\n\n>r2\nTTTT\n");
    const auto records = FastaReader::readAll(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "r1 description");
    EXPECT_EQ(records[0].seq, "ACGTACGT");
    EXPECT_EQ(records[1].name, "r2");
    EXPECT_EQ(records[1].seq, "TTTT");
}

TEST(Fasta, HandlesCrlf)
{
    std::istringstream in(">r1\r\nACGT\r\n");
    const auto records = FastaReader::readAll(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].seq, "ACGT");
}

TEST(Fasta, RejectsMalformed)
{
    {
        std::istringstream in("ACGT\n");
        EXPECT_THROW(FastaReader::readAll(in), InputError);
    }
    {
        std::istringstream in(">\nACGT\n");
        EXPECT_THROW(FastaReader::readAll(in), InputError);
    }
    {
        std::istringstream in(">r1\nAC-GT\n");
        EXPECT_THROW(FastaReader::readAll(in), InputError);
    }
    {
        std::istringstream in(">r1\n>r2\nACGT\n");
        EXPECT_THROW(FastaReader::readAll(in), InputError);
    }
    EXPECT_THROW(FastaReader::readFile("/nonexistent/path.fa"),
                 InputError);
}

TEST(Fasta, WriteReadRoundTrip)
{
    std::vector<SeqRecord> records{{"a", std::string(200, 'A'), ""},
                                   {"b", "ACGT", ""}};
    std::ostringstream out;
    writeFasta(out, records, 60);
    std::istringstream in(out.str());
    const auto parsed = FastaReader::readAll(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].seq, records[0].seq);
    EXPECT_EQ(parsed[1].seq, records[1].seq);
}

TEST(Fastq, ParsesAndRoundTrips)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTT\n+anything\n##\n");
    const auto records = FastqReader::readAll(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].qual, "IIII");
    EXPECT_EQ(records[1].seq, "TT");

    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in2(out.str());
    const auto reparsed = FastqReader::readAll(in2);
    ASSERT_EQ(reparsed.size(), 2u);
    EXPECT_EQ(reparsed[0].seq, records[0].seq);
    EXPECT_EQ(reparsed[1].qual, records[1].qual);
}

TEST(Fastq, RejectsMalformed)
{
    {
        std::istringstream in(">r1\nACGT\n+\nIIII\n");
        EXPECT_THROW(FastqReader::readAll(in), InputError);
    }
    {
        std::istringstream in("@r1\nACGT\n+\nIII\n"); // short quals
        EXPECT_THROW(FastqReader::readAll(in), InputError);
    }
    {
        std::istringstream in("@r1\nACGT\n");
        EXPECT_THROW(FastqReader::readAll(in), InputError);
    }
    {
        std::istringstream in("@r1\nACGT\nIIII\nIIII\n"); // missing +
        EXPECT_THROW(FastqReader::readAll(in), InputError);
    }
}

TEST(Cigar, ParseAndToString)
{
    const Cigar c = Cigar::parse("10M2I3D4S");
    ASSERT_EQ(c.units().size(), 4u);
    EXPECT_EQ(c.str(), "10M2I3D4S");
    EXPECT_EQ(c.refLen(), 13u);
    EXPECT_EQ(c.queryLen(), 16u);
}

TEST(Cigar, EmptyAndStar)
{
    EXPECT_TRUE(Cigar::parse("*").empty());
    EXPECT_TRUE(Cigar::parse("").empty());
    EXPECT_EQ(Cigar{}.str(), "*");
}

TEST(Cigar, PushMergesAdjacent)
{
    Cigar c;
    c.push(CigarOp::kMatch, 5);
    c.push(CigarOp::kMatch, 3);
    c.push(CigarOp::kInsertion, 1);
    c.push(CigarOp::kInsertion, 0); // no-op
    EXPECT_EQ(c.str(), "8M1I");
}

TEST(Cigar, RejectsMalformed)
{
    EXPECT_THROW(Cigar::parse("10"), InputError);
    EXPECT_THROW(Cigar::parse("M"), InputError);
    EXPECT_THROW(Cigar::parse("0M"), InputError);
    EXPECT_THROW(Cigar::parse("5Q"), InputError);
    EXPECT_THROW(Cigar::parse("999999999999M"), InputError);
}

TEST(Alignment, ValidateChecksLengths)
{
    AlnRecord rec;
    rec.qname = "r";
    rec.cigar = Cigar::parse("4M");
    rec.seq = "ACG";
    EXPECT_THROW(rec.validate(), InputError);
    rec.seq = "ACGT";
    rec.validate();
    rec.qual = "II";
    EXPECT_THROW(rec.validate(), InputError);
}

TEST(Alignment, SerializationRoundTrip)
{
    std::vector<AlnRecord> records;
    AlnRecord a;
    a.qname = "read1";
    a.pos = 41;
    a.mapq = 60;
    a.reverse = true;
    a.cigar = Cigar::parse("3M1I2M");
    a.seq = "ACGTAC";
    a.qual = "IIIIII";
    records.push_back(a);

    std::ostringstream out;
    writeAlignments(out, records);
    std::istringstream in(out.str());
    const auto parsed = readAlignments(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].qname, "read1");
    EXPECT_EQ(parsed[0].pos, 41u);
    EXPECT_TRUE(parsed[0].reverse);
    EXPECT_EQ(parsed[0].cigar.str(), "3M1I2M");
    EXPECT_EQ(parsed[0].seq, a.seq);
    EXPECT_EQ(parsed[0].qual, a.qual);
}

TEST(Alignment, ReadRejectsShortLines)
{
    std::istringstream in("only\tthree\tfields\n");
    EXPECT_THROW(readAlignments(in), InputError);
}

TEST(Vcf, WriteReadRoundTrip)
{
    std::vector<VcfRecord> records;
    records.push_back({"chr1", 99, 'A', 'C', 50.0, true, 0.47});
    records.push_back({"chr1", 200, 'G', 'T', 60.0, false, 0.99});
    std::ostringstream out;
    writeVcf(out, records, "chr1", 10'000);
    EXPECT_NE(out.str().find("##fileformat=VCFv4.2"),
              std::string::npos);
    EXPECT_NE(out.str().find("\t100\t"), std::string::npos); // 1-based

    std::istringstream in(out.str());
    const auto parsed = readVcf(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].pos, 99u);
    EXPECT_EQ(parsed[0].ref, 'A');
    EXPECT_EQ(parsed[0].alt, 'C');
    EXPECT_TRUE(parsed[0].heterozygous);
    EXPECT_NEAR(parsed[0].allele_fraction, 0.47, 1e-6);
    EXPECT_FALSE(parsed[1].heterozygous);
}

TEST(Vcf, RejectsMalformed)
{
    std::istringstream short_line("chr1\t100\t.\tA\n");
    EXPECT_THROW(readVcf(short_line), InputError);
    std::istringstream indel(
        "chr1\t100\t.\tAT\tA\t50\tPASS\tAF=0.5\tGT\t0/1\n");
    EXPECT_THROW(readVcf(indel), InputError);
    std::istringstream zero_pos(
        "chr1\t0\t.\tA\tC\t50\tPASS\tAF=0.5\tGT\t0/1\n");
    EXPECT_THROW(readVcf(zero_pos), InputError);
}

TEST(Alignment, EndPos)
{
    AlnRecord rec;
    rec.qname = "r";
    rec.pos = 10;
    rec.cigar = Cigar::parse("5M2D3M2I");
    rec.seq = std::string(10, 'A');
    EXPECT_EQ(rec.endPos(), 20u);
}

} // namespace
} // namespace gb
