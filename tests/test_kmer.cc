/**
 * @file
 * Tests for k-mer extraction and the counting hash table, including a
 * std::map oracle and robin-hood vs linear equivalence.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "io/dna.h"
#include "kmer/kmer_counter.h"
#include "util/rng.h"

namespace gb {
namespace {

TEST(KmerPack, RevComp)
{
    // "ACGT" = 00 01 10 11 -> rc("ACGT") = "ACGT".
    const u64 acgt = 0b00011011;
    EXPECT_EQ(revcompKmer(acgt, 4), acgt);
    // "AAAA" <-> "TTTT".
    EXPECT_EQ(revcompKmer(0, 4), 0b11111111u);
    // Involution on random k-mers.
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const u32 k = 1 + static_cast<u32>(rng.below(31));
        const u64 kmer = rng.next() & ((u64{1} << (2 * k)) - 1);
        EXPECT_EQ(revcompKmer(revcompKmer(kmer, k), k), kmer);
    }
}

TEST(KmerPack, CanonicalIsStrandInvariant)
{
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        const u32 k = 1 + static_cast<u32>(rng.below(31));
        const u64 kmer = rng.next() & ((u64{1} << (2 * k)) - 1);
        EXPECT_EQ(canonicalKmer(kmer, k),
                  canonicalKmer(revcompKmer(kmer, k), k));
    }
}

TEST(ForEachKmer, EnumeratesAllWindows)
{
    const auto codes = encodeDna("ACGTAC");
    std::vector<u64> kmers;
    forEachKmer(std::span<const u8>(codes), 3,
                [&](u64 kmer, u64 pos) {
                    kmers.push_back(kmer);
                    EXPECT_EQ(kmers.size() - 1, pos);
                });
    // ACG CGT GTA TAC.
    ASSERT_EQ(kmers.size(), 4u);
    EXPECT_EQ(kmers[0], 0b000110u);
    EXPECT_EQ(kmers[1], 0b011011u);
}

TEST(ForEachKmer, SkipsAmbiguousWindows)
{
    const auto codes = encodeDna("ACGNACGT");
    std::vector<u64> positions;
    forEachKmer(std::span<const u8>(codes), 3,
                [&](u64, u64 pos) { positions.push_back(pos); });
    // Valid windows: ACG@0, then ACG@4 and CGT@5 after the N.
    const std::vector<u64> expected{0, 4, 5};
    EXPECT_EQ(positions, expected);
}

TEST(ForEachKmer, SequenceShorterThanK)
{
    const auto codes = encodeDna("AC");
    int n = 0;
    forEachKmer(std::span<const u8>(codes), 5, [&](u64, u64) { ++n; });
    EXPECT_EQ(n, 0);
}

class CounterSchemes
    : public ::testing::TestWithParam<HashScheme>
{
};

TEST_P(CounterSchemes, MatchesMapOracle)
{
    Rng rng(7);
    KmerCounter counter(12, GetParam());
    std::map<u64, u32> oracle;
    NullProbe probe;

    for (int i = 0; i < 3000; ++i) {
        // Small key space to force repeats and collisions.
        const u64 kmer = rng.below(700);
        counter.add(kmer, probe);
        ++oracle[kmer];
    }
    EXPECT_EQ(counter.size(), oracle.size());
    for (const auto& [kmer, count] : oracle) {
        EXPECT_EQ(counter.count(kmer), count) << "kmer " << kmer;
    }
    EXPECT_EQ(counter.count(999'999), 0u);
}

TEST_P(CounterSchemes, SaturatesAt65535)
{
    KmerCounter counter(6, GetParam());
    NullProbe probe;
    for (int i = 0; i < 70'000; ++i) counter.add(42, probe);
    EXPECT_EQ(counter.count(42), 65535u);
}

TEST_P(CounterSchemes, ThrowsOnOverflow)
{
    KmerCounter counter(4, GetParam()); // 16 slots
    NullProbe probe;
    EXPECT_THROW(
        {
            for (u64 i = 0; i < 16; ++i) counter.add(i, probe);
        },
        InternalError);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CounterSchemes,
                         ::testing::Values(HashScheme::kLinear,
                                           HashScheme::kRobinHood));

TEST(KmerCounter, RobinHoodReducesProbeVariance)
{
    // At high load, robin hood equalizes probe distances; total probe
    // steps should not exceed linear probing by much and lookups of
    // present keys stay correct. (The design-choice ablation bench
    // reports the full numbers.)
    Rng rng(8);
    KmerCounter linear(14, HashScheme::kLinear);
    KmerCounter robin(14, HashScheme::kRobinHood);
    NullProbe probe;
    std::vector<u64> keys;
    for (int i = 0; i < 14'000; ++i) { // ~85 % load
        keys.push_back(rng.next());
        linear.add(keys.back(), probe);
        robin.add(keys.back(), probe);
    }
    for (u64 key : keys) {
        ASSERT_EQ(robin.count(key), linear.count(key));
    }
    EXPECT_EQ(robin.size(), linear.size());
}

TEST(CountKmers, EndToEndWithOracle)
{
    Rng rng(9);
    std::vector<std::vector<u8>> reads;
    std::map<u64, u32> oracle;
    const u32 k = 7;
    for (int r = 0; r < 50; ++r) {
        std::string s;
        for (int i = 0; i < 100; ++i) s += "ACGT"[rng.below(4)];
        reads.push_back(encodeDna(s));
        forEachKmer(std::span<const u8>(reads.back()), k,
                    [&](u64 kmer, u64) {
                        ++oracle[canonicalKmer(kmer, k)];
                    });
    }

    KmerCounter counter(16);
    NullProbe probe;
    const auto stats = countKmers(
        std::span<const std::vector<u8>>(reads), k, counter, probe);
    EXPECT_EQ(stats.total_kmers, 50u * (100 - k + 1));
    EXPECT_EQ(stats.distinct_kmers, oracle.size());
    for (const auto& [kmer, count] : oracle) {
        EXPECT_EQ(counter.count(kmer), count);
    }
}

TEST(KmerCounter, HistogramAndSolid)
{
    KmerCounter counter(8);
    NullProbe probe;
    for (int i = 0; i < 5; ++i) counter.add(1, probe);
    for (int i = 0; i < 2; ++i) counter.add(2, probe);
    counter.add(3, probe);
    EXPECT_EQ(counter.solidKmers(2), 2u);
    EXPECT_EQ(counter.solidKmers(5), 1u);
    const auto hist = counter.countHistogram(10);
    EXPECT_EQ(hist[1], 1u);
    EXPECT_EQ(hist[2], 1u);
    EXPECT_EQ(hist[5], 1u);
}

} // namespace
} // namespace gb
