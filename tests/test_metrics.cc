/**
 * @file
 * Unit tests for the metrics module: JSON rendering primitives, the
 * MetricsSink schema contract (gb-metrics-v1), table mirroring, and
 * the PerfCounters degradation contract.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "metrics/metrics_sink.h"
#include "metrics/perf_counters.h"
#include "util/table.h"

namespace gb::metrics {
namespace {

TEST(JsonEscape, PlainTextUntouched)
{
    EXPECT_EQ(jsonEscape("bsw tiny 1.5"), "bsw tiny 1.5");
}

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, Utf8PassesThrough)
{
    EXPECT_EQ(jsonEscape("µs — ok"), "µs — ok");
}

TEST(JsonNumber, IntegersRenderExactly)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
}

TEST(JsonNumber, RoundTripsArbitraryDoubles)
{
    for (const double v : {0.1, 1.0 / 3.0, 2.5e-8, 9.87654321e12,
                           -123.456789012345, 1e300}) {
        const std::string text = jsonNumber(v);
        EXPECT_EQ(std::stod(text), v) << "text: " << text;
        // JSON numbers never carry a trailing 'f' or leading '+'.
        EXPECT_EQ(text.find('f'), std::string::npos);
        EXPECT_NE(text.front(), '+');
    }
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

RunMeta
testMeta()
{
    RunMeta meta;
    meta.experiment = "test-exp";
    meta.paper_ref = "unit test";
    meta.git_sha = "cafe123"; // pinned: schema test is byte-exact
    meta.size = "tiny";
    meta.engine = "scalar";
    meta.simd_level = "avx2";
    meta.threads = 4;
    return meta;
}

TEST(MetricsSink, DisabledByDefault)
{
    MetricsSink sink;
    EXPECT_FALSE(sink.enabled());
    // Row setters must be harmless no-ops on a disabled sink.
    sink.newRow("t").str("k", "v").num("n", 1.0).count("c", 2).flag(
        "f", true);
    EXPECT_NO_THROW(sink.close());
}

TEST(MetricsSink, SchemaStableDocument)
{
    MetricsSink sink;
    sink.begin(testMeta());
    EXPECT_TRUE(sink.enabled());
    sink.newRow("demo").str("kernel", "bsw").num("bpki", 3.5).count(
        "ops", 1234);
    sink.newRow("demo").str("kernel", "fmi").flag("gpu", false);

    const std::string expected =
        "{\n"
        "  \"schema\": \"gb-metrics-v1\",\n"
        "  \"meta\": {\"experiment\":\"test-exp\","
        "\"paper_ref\":\"unit test\",\"git_sha\":\"cafe123\","
        "\"size\":\"tiny\",\"threads\":4,\"engine\":\"scalar\","
        "\"simd_level\":\"avx2\",\"host_hw_threads\":" +
        std::to_string(std::thread::hardware_concurrency()) +
        "},\n"
        "  \"rows\": [\n"
        "    {\"table\":\"demo\",\"kernel\":\"bsw\",\"bpki\":3.5,"
        "\"ops\":1234},\n"
        "    {\"table\":\"demo\",\"kernel\":\"fmi\",\"gpu\":false}\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(sink.json(), expected);
}

TEST(MetricsSink, EmptyRowsStillValidDocument)
{
    MetricsSink sink;
    sink.begin(testMeta());
    const std::string doc = sink.json();
    EXPECT_NE(doc.find("\"schema\": \"gb-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"rows\": []"), std::string::npos);
}

TEST(MetricsSink, DefaultGitShaIsBuildSha)
{
    MetricsSink sink;
    RunMeta meta = testMeta();
    meta.git_sha.clear();
    sink.begin(std::move(meta));
    EXPECT_NE(sink.json().find("\"git_sha\":\"" + buildGitSha() + "\""),
              std::string::npos);
    EXPECT_FALSE(buildGitSha().empty());
}

TEST(MetricsSink, WritesFileOnClose)
{
    const std::string path =
        testing::TempDir() + "/gb_metrics_test.json";
    {
        MetricsSink sink;
        sink.open(path, testMeta());
        sink.newRow("t").num("v", 1.25);
        sink.close();
        sink.close(); // idempotent
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"v\":1.25"), std::string::npos);
    EXPECT_NE(body.str().find("gb-metrics-v1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(MetricsSink, WriteFailureThrows)
{
    MetricsSink sink;
    sink.open("/nonexistent-dir/sub/metrics.json", testMeta());
    EXPECT_THROW(sink.close(), InputError);
    // Destructor after a failed close must not throw (closed_ set).
}

TEST(MetricsSink, OpenRejectsEmptyPath)
{
    MetricsSink sink;
    EXPECT_THROW(sink.open("", testMeta()), InputError);
}

TEST(EmitTable, NumericCellsBecomeJsonNumbers)
{
    Table table("traffic");
    table.setHeader({"kernel", "ops", "bpki", "note"});
    table.newRow()
        .cell("bsw")
        .cell("1,234,567") // thousands separators stripped
        .cellF(3.5, 2)
        .cell("n/a");

    MetricsSink sink;
    sink.begin(testMeta());
    emitTable(sink, table);
    const std::string doc = sink.json();
    EXPECT_NE(doc.find("\"table\":\"traffic\""), std::string::npos);
    EXPECT_NE(doc.find("\"kernel\":\"bsw\""), std::string::npos);
    EXPECT_NE(doc.find("\"ops\":1234567"), std::string::npos);
    EXPECT_NE(doc.find("\"bpki\":3.5"), std::string::npos);
    EXPECT_NE(doc.find("\"note\":\"n/a\""), std::string::npos);
}

TEST(EmitTable, DisabledSinkIsNoOp)
{
    Table table("t");
    table.setHeader({"a"});
    table.newRow().cell("x");
    MetricsSink sink;
    EXPECT_NO_THROW(emitTable(sink, table));
    EXPECT_FALSE(sink.enabled());
}

TEST(PerfSample, HelpersPropagateInvalidity)
{
    PerfSample sample; // all counters -1 by default
    EXPECT_FALSE(PerfSample::valid(sample.cycles));
    EXPECT_DOUBLE_EQ(sample.ipc(), -1.0);
    EXPECT_DOUBLE_EQ(sample.perKiloInstructions(100.0), -1.0);

    sample.cycles = 2000.0;
    sample.instructions = 4000.0;
    EXPECT_DOUBLE_EQ(sample.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(sample.perKiloInstructions(8.0), 2.0);
    EXPECT_DOUBLE_EQ(sample.perKiloInstructions(-1.0), -1.0);
}

/**
 * Degradation contract: whether or not perf_event_open works in this
 * environment, construction/start/stop must succeed and the sample
 * must be self-consistent — available with valid mandatory counters,
 * or unavailable with a reason and every counter invalid.
 */
TEST(PerfCounters, DegradationContract)
{
    PerfCounters counters;
    counters.start();
    // A little work so available counters read something non-zero.
    volatile double x = 1.0;
    for (int i = 0; i < 100'000; ++i) x = x * 1.0000001 + 0.5;
    const PerfSample sample = counters.stop();

    EXPECT_EQ(sample.available, counters.available());
    if (sample.available) {
        EXPECT_TRUE(counters.unavailableReason().empty());
        EXPECT_TRUE(PerfSample::valid(sample.cycles));
        EXPECT_TRUE(PerfSample::valid(sample.instructions));
        EXPECT_GT(sample.instructions, 0.0);
        EXPECT_GT(sample.ipc(), 0.0);
    } else {
        EXPECT_FALSE(sample.unavailable_reason.empty());
        EXPECT_FALSE(counters.unavailableReason().empty());
        EXPECT_FALSE(PerfSample::valid(sample.cycles));
        EXPECT_FALSE(PerfSample::valid(sample.instructions));
        EXPECT_FALSE(PerfSample::valid(sample.llc_misses));
        EXPECT_FALSE(PerfSample::valid(sample.branch_misses));
        EXPECT_FALSE(PerfSample::valid(sample.task_clock_seconds));
        EXPECT_DOUBLE_EQ(sample.ipc(), -1.0);
    }
}

TEST(PerfCounters, RestartableAcrossRuns)
{
    PerfCounters counters;
    counters.start();
    const PerfSample first = counters.stop();
    counters.start();
    const PerfSample second = counters.stop();
    EXPECT_EQ(first.available, second.available);
}

} // namespace
} // namespace gb::metrics
