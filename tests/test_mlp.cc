/**
 * @file
 * gb::mlp equivalence tests: the batched, prefetch-pipelined engines
 * (searchBatch, smemsBatch, KmerCounter::addBatch) and the SIMD occ
 * counter must be bit-identical to their scalar counterparts — in
 * results AND in modeled probe traffic — at every dispatch level.
 */
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/probe.h"
#include "index/fm_index.h"
#include "io/dna.h"
#include "kmer/kmer_counter.h"
#include "mlp/fmi_batch.h"
#include "mlp/mlp.h"
#include "simd/occ_engine.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace gb {
namespace {

/** Restores automatic dispatch when a test forces a level. */
struct LevelGuard
{
    ~LevelGuard() { simd::resetSimdLevel(); }
};

/** Levels this host can actually execute (always includes scalar). */
std::vector<simd::SimdLevel>
testableLevels()
{
    std::vector<simd::SimdLevel> levels{simd::SimdLevel::kScalar};
    const simd::SimdLevel best = simd::detectSimdLevel();
    if (best >= simd::SimdLevel::kSse4) {
        levels.push_back(simd::SimdLevel::kSse4);
    }
    if (best >= simd::SimdLevel::kAvx2) {
        levels.push_back(simd::SimdLevel::kAvx2);
    }
    return levels;
}

std::string
randomDna(Rng& rng, u64 len)
{
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
}

/** Encoded read sampled from ref with mutations and occasional Ns. */
std::vector<u8>
sampleRead(Rng& rng, const std::string& ref, u64 min_len, u64 max_len)
{
    const u64 len = min_len + rng.below(max_len - min_len + 1);
    const u64 start = rng.below(ref.size() - len);
    std::string s = ref.substr(start, len);
    const u64 edits = rng.below(4);
    for (u64 e = 0; e < edits; ++e) {
        s[rng.below(s.size())] = "ACGTN"[rng.below(5)];
    }
    if (rng.chance(0.25)) s[rng.below(s.size())] = 'N';
    return encodeDna(s);
}

// ---------------------------------------------------------------- occ

TEST(OccEngine, MatchesScalarOnRandomBuffers)
{
    Rng rng(42);
    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        const auto fn = simd::occCountFor(simd::activeSimdLevel());
        for (int iter = 0; iter < 400; ++iter) {
            const u32 len = static_cast<u32>(rng.below(520));
            std::vector<u8> bytes(len + 1); // +1: len==0 needs data()
            for (u32 j = 0; j < len; ++j) {
                bytes[j] = static_cast<u8>(rng.below(6));
            }
            u64 want[FmIndex::kAlphabet] = {7, 0, 3, 0, 0, 11};
            u64 got[FmIndex::kAlphabet] = {7, 0, 3, 0, 0, 11};
            simd::occCountScalar(bytes.data(), len, want);
            fn(bytes.data(), len, got);
            for (u32 c = 0; c < FmIndex::kAlphabet; ++c) {
                ASSERT_EQ(got[c], want[c])
                    << "level=" << simd::simdLevelName(level)
                    << " len=" << len << " sym=" << c;
            }
        }
    }
}

TEST(OccEngine, CountsAccumulateOnTopOfExistingValues)
{
    const u8 bytes[] = {0, 1, 2, 3, 4, 5, 2, 2};
    for (const simd::SimdLevel level : testableLevels()) {
        u64 counts[FmIndex::kAlphabet] = {100, 0, 50, 0, 0, 9};
        simd::occCountFor(level)(bytes, 8, counts);
        EXPECT_EQ(counts[0], 101u);
        EXPECT_EQ(counts[1], 1u);
        EXPECT_EQ(counts[2], 53u);
        EXPECT_EQ(counts[3], 1u);
        EXPECT_EQ(counts[4], 1u);
        EXPECT_EQ(counts[5], 10u);
    }
}

// -------------------------------------------------------- searchBatch

TEST(SearchBatch, MatchesScalarCountAtEveryLevelAndWidth)
{
    Rng rng(7);
    const std::string ref = randomDna(rng, 2000);
    const FmIndex fm = FmIndex::build(ref);

    std::vector<std::vector<u8>> patterns;
    std::vector<std::string> texts;
    for (int i = 0; i < 1200; ++i) {
        std::string p;
        if (i % 3 == 0) {
            p = randomDna(rng, 1 + rng.below(24));
        } else {
            const u64 len = 4 + rng.below(40);
            const u64 start = rng.below(ref.size() - len);
            p = ref.substr(start, len);
            if (rng.chance(0.1)) p[rng.below(p.size())] = 'N';
        }
        texts.push_back(p);
        patterns.push_back(encodeDna(p));
    }
    patterns.push_back({}); // empty query counts 0
    texts.push_back("");

    std::vector<u64> want(patterns.size());
    for (size_t q = 0; q < patterns.size(); ++q) {
        NullProbe probe;
        want[q] = mlp::countEncoded(
            fm, std::span<const u8>(patterns[q]), probe);
        if (!texts[q].empty()) {
            ASSERT_EQ(want[q], fm.count(texts[q])) << texts[q];
        }
    }

    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        for (const u32 width : {1u, 3u, 16u, 64u}) {
            NullProbe probe;
            const auto got = mlp::searchBatch(
                fm, std::span<const std::vector<u8>>(patterns), probe,
                width);
            ASSERT_EQ(got.size(), want.size());
            for (size_t q = 0; q < want.size(); ++q) {
                ASSERT_EQ(got[q], want[q])
                    << "level=" << simd::simdLevelName(level)
                    << " width=" << width << " pattern=" << texts[q];
            }
        }
    }
}

TEST(SearchBatch, EmptyBatchAndZeroWidth)
{
    Rng rng(8);
    const FmIndex fm = FmIndex::build(randomDna(rng, 300));
    NullProbe probe;
    EXPECT_TRUE(
        mlp::searchBatch(fm, std::span<const std::vector<u8>>(), probe)
            .empty());
    std::vector<std::vector<u8>> one{encodeDna("ACGT")};
    EXPECT_THROW(mlp::searchBatch(
                     fm, std::span<const std::vector<u8>>(one), probe,
                     0),
                 InputError);
}

TEST(SearchBatch, ProbeTrafficEqualsScalar)
{
    Rng rng(9);
    const std::string ref = randomDna(rng, 1500);
    const FmIndex fm = FmIndex::build(ref);
    std::vector<std::vector<u8>> patterns;
    for (int i = 0; i < 300; ++i) {
        const u64 len = 3 + rng.below(30);
        const u64 start = rng.below(ref.size() - len);
        patterns.push_back(encodeDna(ref.substr(start, len)));
    }

    CountingProbe scalar;
    for (const auto& p : patterns) {
        mlp::countEncoded(fm, std::span<const u8>(p), scalar);
    }
    CountingProbe batched;
    mlp::searchBatch(fm, std::span<const std::vector<u8>>(patterns),
                     batched, 16);

    for (size_t c = 0; c < kNumOpClasses; ++c) {
        EXPECT_EQ(batched.counts().by_class[c],
                  scalar.counts().by_class[c])
            << opClassName(static_cast<OpClass>(c));
    }
    EXPECT_EQ(batched.loadBytes(), scalar.loadBytes());
    EXPECT_EQ(batched.storeBytes(), scalar.storeBytes());
}

// --------------------------------------------------------- smemsBatch

TEST(SmemsBatch, MatchesScalarSmemsAtEveryLevelAndWidth)
{
    Rng rng(11);
    const std::string ref = randomDna(rng, 3000);
    const FmIndex fm = FmIndex::build(ref);

    std::vector<std::vector<u8>> reads;
    for (int i = 0; i < 1000; ++i) {
        reads.push_back(sampleRead(rng, ref, 25, 120));
    }
    reads.push_back({});                  // empty read
    reads.push_back(encodeDna("NNNNNN")); // all-ambiguous read
    reads.push_back(encodeDna("AC"));     // shorter than min_len

    const i32 min_len = 19;
    std::vector<std::vector<Smem>> want(reads.size());
    for (size_t q = 0; q < reads.size(); ++q) {
        NullProbe probe;
        fm.smems(std::span<const u8>(reads[q]), min_len, want[q],
                 probe);
    }

    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        for (const u32 width : {1u, 5u, 16u, 33u}) {
            NullProbe probe;
            std::vector<std::vector<Smem>> got;
            mlp::smemsBatch(fm,
                            std::span<const std::vector<u8>>(reads),
                            min_len, got, probe, width);
            ASSERT_EQ(got.size(), want.size());
            for (size_t q = 0; q < want.size(); ++q) {
                ASSERT_EQ(got[q].size(), want[q].size())
                    << "level=" << simd::simdLevelName(level)
                    << " width=" << width << " read=" << q;
                for (size_t m = 0; m < want[q].size(); ++m) {
                    EXPECT_EQ(got[q][m].k, want[q][m].k);
                    EXPECT_EQ(got[q][m].l, want[q][m].l);
                    EXPECT_EQ(got[q][m].s, want[q][m].s);
                    EXPECT_EQ(got[q][m].begin, want[q][m].begin);
                    EXPECT_EQ(got[q][m].end, want[q][m].end);
                }
            }
        }
    }
}

TEST(SmemsBatch, EmptyBatchAndZeroWidth)
{
    Rng rng(12);
    const FmIndex fm = FmIndex::build(randomDna(rng, 300));
    NullProbe probe;
    std::vector<std::vector<Smem>> out{{}, {}};
    mlp::smemsBatch(fm, std::span<const std::vector<u8>>(), 19, out,
                    probe);
    EXPECT_TRUE(out.empty()); // resized to the (empty) batch
    std::vector<std::vector<u8>> one{encodeDna("ACGTACGTACGT")};
    EXPECT_THROW(
        mlp::smemsBatch(fm, std::span<const std::vector<u8>>(one), 5,
                        out, probe, 0),
        InputError);
}

TEST(SmemsBatch, ProbeTrafficEqualsScalar)
{
    Rng rng(13);
    const std::string ref = randomDna(rng, 2000);
    const FmIndex fm = FmIndex::build(ref);
    std::vector<std::vector<u8>> reads;
    for (int i = 0; i < 200; ++i) {
        reads.push_back(sampleRead(rng, ref, 30, 100));
    }

    CountingProbe scalar;
    std::vector<Smem> sink;
    for (const auto& r : reads) {
        fm.smems(std::span<const u8>(r), 19, sink, scalar);
    }

    CountingProbe batched;
    std::vector<std::vector<Smem>> out;
    mlp::smemsBatch(fm, std::span<const std::vector<u8>>(reads), 19,
                    out, batched, 16);

    for (size_t c = 0; c < kNumOpClasses; ++c) {
        EXPECT_EQ(batched.counts().by_class[c],
                  scalar.counts().by_class[c])
            << opClassName(static_cast<OpClass>(c));
    }
    EXPECT_EQ(batched.loadBytes(), scalar.loadBytes());
    EXPECT_EQ(batched.storeBytes(), scalar.storeBytes());
}

// ----------------------------------------------------------- addBatch

TEST(AddBatch, TableAndTrafficIdenticalToSequentialAdd)
{
    Rng rng(21);
    std::vector<u64> kmers;
    for (int i = 0; i < 5000; ++i) {
        // Narrow key space so duplicates and collisions occur.
        kmers.push_back(rng.below(700));
    }

    for (const HashScheme scheme :
         {HashScheme::kLinear, HashScheme::kRobinHood}) {
        KmerCounter want(11, scheme);
        CountingProbe want_probe;
        for (const u64 k : kmers) want.add(k, want_probe);

        for (const u32 lookahead : {0u, 1u, 8u, 64u}) {
            KmerCounter got(11, scheme);
            CountingProbe got_probe;
            got.addBatch(std::span<const u64>(kmers), got_probe,
                         lookahead);
            ASSERT_EQ(got.size(), want.size());
            ASSERT_EQ(got.probeSteps(), want.probeSteps());
            want.forEachEntry([&](u64 key, u16 cnt) {
                ASSERT_EQ(got.count(key), cnt)
                    << "lookahead=" << lookahead;
            });
            for (size_t c = 0; c < kNumOpClasses; ++c) {
                EXPECT_EQ(got_probe.counts().by_class[c],
                          want_probe.counts().by_class[c])
                    << opClassName(static_cast<OpClass>(c));
            }
            EXPECT_EQ(got_probe.loadBytes(), want_probe.loadBytes());
            EXPECT_EQ(got_probe.storeBytes(), want_probe.storeBytes());
        }
    }
}

TEST(AddBatch, SmallAndEmptyBatches)
{
    for (const size_t n : {size_t{0}, size_t{1}, size_t{17}}) {
        KmerCounter counter(8, HashScheme::kRobinHood);
        NullProbe probe;
        std::vector<u64> kmers(n, 5);
        counter.addBatch(std::span<const u64>(kmers), probe);
        EXPECT_EQ(counter.size(), n ? 1u : 0u);
        EXPECT_EQ(counter.count(5), n);
    }
}

TEST(CountKmersPrefetch, SharedPathMatchesCountKmers)
{
    Rng rng(23);
    const std::string ref = randomDna(rng, 5000);
    std::vector<std::vector<u8>> reads;
    for (int i = 0; i < 40; ++i) {
        reads.push_back(sampleRead(rng, ref, 60, 400));
    }
    const u32 k = 17;

    KmerCounter plain(14, HashScheme::kRobinHood);
    CountingProbe plain_probe;
    const auto s0 = countKmers(
        std::span<const std::vector<u8>>(reads), k, plain,
        plain_probe);

    KmerCounter pre(14, HashScheme::kRobinHood);
    CountingProbe pre_probe;
    const auto s1 = countKmersPrefetch(
        std::span<const std::vector<u8>>(reads), k, pre, pre_probe);

    EXPECT_EQ(s1.total_kmers, s0.total_kmers);
    EXPECT_EQ(s1.distinct_kmers, s0.distinct_kmers);
    EXPECT_EQ(s1.probe_steps, s0.probe_steps);
    plain.forEachEntry(
        [&](u64 key, u16 cnt) { ASSERT_EQ(pre.count(key), cnt); });
    for (size_t c = 0; c < kNumOpClasses; ++c) {
        EXPECT_EQ(pre_probe.counts().by_class[c],
                  plain_probe.counts().by_class[c])
            << opClassName(static_cast<OpClass>(c));
    }
    EXPECT_EQ(pre_probe.loadBytes(), plain_probe.loadBytes());
    EXPECT_EQ(pre_probe.storeBytes(), plain_probe.storeBytes());
}

} // namespace
} // namespace gb
