/**
 * @file
 * Tests for gb::net: HOST:PORT parsing, the wire-protocol
 * parser/formatters, and the Server/Connection stack end-to-end over
 * 127.0.0.1 — submit/wait/cancel/stats/drain round-trips, strict
 * priority dispatch order, queue-full load shedding, WAIT timeouts,
 * the session limit, and the line client.
 *
 * Every server test drives a real TCP connection against a Scheduler
 * built on gated fake kernels (as in test_serve.cc), so ordering
 * assertions are deterministic: a gate is only released once the
 * queue holds exactly the jobs the test wants ordered.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/net.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/job.h"
#include "serve/scheduler.h"

namespace gb {
namespace {

using net::Connection;
using net::HostPort;
using net::Listener;
using net::Request;
using net::Server;
using net::ServerConfig;
using net::Verb;
using serve::JobStatus;
using serve::Scheduler;

// ---------------------------------------------------------------------
// Address parsing

TEST(NetHostPort, ParsesHostAndPort)
{
    const HostPort hp = net::parseHostPort("127.0.0.1:8080");
    EXPECT_EQ(hp.host, "127.0.0.1");
    EXPECT_EQ(hp.port, 8080);
    EXPECT_EQ(net::parseHostPort("0.0.0.0:1").port, 1);
    EXPECT_EQ(net::parseHostPort("10.0.0.1:65535").port, 65535);
}

TEST(NetHostPort, RejectsMalformedSpecs)
{
    EXPECT_THROW(net::parseHostPort(""), InputError);
    EXPECT_THROW(net::parseHostPort("127.0.0.1"), InputError);
    EXPECT_THROW(net::parseHostPort(":8080"), InputError);
    EXPECT_THROW(net::parseHostPort("127.0.0.1:"), InputError);
    EXPECT_THROW(net::parseHostPort("127.0.0.1:http"), InputError);
    EXPECT_THROW(net::parseHostPort("127.0.0.1:70000"), InputError);
}

// ---------------------------------------------------------------------
// Protocol parsing and formatting

TEST(NetProtocol, ParsesEveryVerb)
{
    const Request submit =
        net::parseRequest("SUBMIT fmi size=tiny priority=high");
    EXPECT_EQ(submit.verb, Verb::kSubmit);
    EXPECT_EQ(submit.job_line, "fmi size=tiny priority=high");

    const Request status = net::parseRequest("STATUS 7");
    EXPECT_EQ(status.verb, Verb::kStatus);
    EXPECT_EQ(status.id, 7u);

    const Request wait = net::parseRequest("WAIT 3 1.5");
    EXPECT_EQ(wait.verb, Verb::kWait);
    EXPECT_EQ(wait.id, 3u);
    EXPECT_DOUBLE_EQ(wait.timeout, 1.5);

    const Request wait_forever = net::parseRequest("WAIT 3");
    EXPECT_LT(wait_forever.timeout, 0.0); // absent = block

    EXPECT_EQ(net::parseRequest("CANCEL 9").verb, Verb::kCancel);
    EXPECT_EQ(net::parseRequest("STATS").verb, Verb::kStats);
    EXPECT_EQ(net::parseRequest("DRAIN").verb, Verb::kDrain);
}

TEST(NetProtocol, RejectsMalformedRequests)
{
    EXPECT_THROW(net::parseRequest(""), InputError);
    EXPECT_THROW(net::parseRequest("FROBNICATE 1"), InputError);
    EXPECT_THROW(net::parseRequest("SUBMIT"), InputError);
    EXPECT_THROW(net::parseRequest("STATUS"), InputError);
    EXPECT_THROW(net::parseRequest("STATUS abc"), InputError);
    EXPECT_THROW(net::parseRequest("STATUS 0"), InputError);
    EXPECT_THROW(net::parseRequest("STATUS -3"), InputError);
    EXPECT_THROW(net::parseRequest("STATUS 1 2"), InputError);
    EXPECT_THROW(net::parseRequest("WAIT 1 soon"), InputError);
    EXPECT_THROW(net::parseRequest("STATS now"), InputError);
    EXPECT_THROW(net::parseRequest("DRAIN 1"), InputError);
}

TEST(NetProtocol, ErrReplyStaysOneLine)
{
    EXPECT_EQ(net::errReply("boom"), "ERR boom");
    const std::string reply = net::errReply("line1\nline2\r\n");
    EXPECT_EQ(reply.find('\n'), std::string::npos);
    EXPECT_EQ(reply.find('\r'), std::string::npos);
}

TEST(NetProtocol, StatusPayloadShapes)
{
    serve::JobMetrics metrics;
    metrics.tasks = 42;
    metrics.repeats_completed = 3;
    metrics.pool_threads = 2;
    const std::string done =
        net::statusPayload(5, JobStatus::kDone, metrics, "");
    EXPECT_EQ(done.rfind("5 done", 0), 0u) << done;
    EXPECT_NE(done.find("tasks=42"), std::string::npos) << done;
    EXPECT_NE(done.find("repeats=3"), std::string::npos) << done;

    const std::string failed = net::statusPayload(
        6, JobStatus::kFailed, metrics, "kernel exploded\nbadly");
    EXPECT_EQ(failed.rfind("6 failed", 0), 0u) << failed;
    EXPECT_NE(failed.find("kernel exploded"), std::string::npos);
    EXPECT_EQ(failed.find('\n'), std::string::npos) << failed;

    const std::string queued =
        net::statusPayload(7, JobStatus::kQueued, metrics, "");
    EXPECT_EQ(queued, "7 queued");
}

TEST(NetProtocol, StatsPayloadPinsFieldOrder)
{
    Scheduler::Stats stats;
    stats.workers = 2;
    stats.queue_depth = 8;
    stats.submitted = 5;
    stats.rejected = 1;
    stats.completed = 3;
    stats.failed = 1;
    stats.cancelled = 0;
    stats.queued = 0;
    stats.running = 0;
    stats.peak_workers_busy = 2;
    stats.latency.jobs = 4;
    stats.latency.queue_wait = {0.5, 1.25, 2.0};
    stats.latency.prepare = {1.0, 2.0, 3.0};
    stats.latency.run = {4.0, 5.0, 6.0};
    stats.latency.end_to_end = {5.5, 7.0, 9.0};
    // The legacy prefix is frozen and the latency snapshot is
    // append-only: new fields may only ever be added at the end.
    EXPECT_EQ(net::statsPayload(stats),
              "workers=2 queue_depth=8 submitted=5 rejected=1 "
              "completed=3 failed=1 cancelled=0 queued=0 running=0 "
              "peak_workers_busy=2 lat_jobs=4 "
              "queue_wait_p50_ms=0.500 queue_wait_p95_ms=1.250 "
              "queue_wait_p99_ms=2.000 "
              "prepare_p50_ms=1.000 prepare_p95_ms=2.000 "
              "prepare_p99_ms=3.000 "
              "run_p50_ms=4.000 run_p95_ms=5.000 run_p99_ms=6.000 "
              "e2e_p50_ms=5.500 e2e_p95_ms=7.000 e2e_p99_ms=9.000");
}

// ---------------------------------------------------------------------
// Socket primitives

TEST(NetListener, EphemeralPortAndEcho)
{
    Listener listener("127.0.0.1", 0);
    ASSERT_GT(listener.port(), 0);
    std::thread echo([&] {
        auto conn = listener.accept();
        ASSERT_TRUE(conn.has_value());
        std::string line;
        while (conn->readLine(&line)) {
            conn->writeLine("echo: " + line);
        }
    });
    Connection client =
        Connection::connectTo("127.0.0.1", listener.port(), 1.0);
    client.writeLine("hello");
    std::string reply;
    ASSERT_TRUE(client.readLine(&reply));
    EXPECT_EQ(reply, "echo: hello");
    client.close(); // orderly EOF ends the echo loop
    echo.join();
}

TEST(NetListener, CloseUnblocksAccept)
{
    Listener listener("127.0.0.1", 0);
    std::thread acceptor([&] {
        EXPECT_FALSE(listener.accept().has_value());
    });
    // Give accept() a moment to block, then close from this thread.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.close();
    acceptor.join();
}

TEST(NetConnection, ReadTimeoutReturnsFalse)
{
    Listener listener("127.0.0.1", 0);
    std::thread silent([&] {
        auto conn = listener.accept();
        ASSERT_TRUE(conn.has_value());
        // Hold the connection open, send nothing.
        std::string line;
        conn->readLine(&line);
    });
    Connection client =
        Connection::connectTo("127.0.0.1", listener.port(), 1.0);
    client.setReadTimeout(0.05);
    std::string line;
    EXPECT_FALSE(client.readLine(&line)); // timed out, no data
    client.close();
    silent.join();
}

TEST(NetConnection, ConnectToDeadPortThrows)
{
    // Bind-then-close yields a port nobody listens on.
    u16 dead_port = 0;
    { Listener listener("127.0.0.1", 0); dead_port = listener.port(); }
    EXPECT_THROW(Connection::connectTo("127.0.0.1", dead_port, 0.0),
                 net::NetError);
    EXPECT_THROW(Connection::connectTo("not-an-ip", 1, 0.0),
                 net::NetError);
}

// ---------------------------------------------------------------------
// Gated fake kernels (same pattern as test_serve.cc)

struct FakeControl
{
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::string> started;
    std::set<std::string> gated;

    void
    recordStart(const std::string& name)
    {
        std::unique_lock<std::mutex> lock(m);
        started.push_back(name);
        cv.notify_all();
        cv.wait(lock, [&] { return gated.count(name) == 0; });
    }

    void
    release(const std::string& name)
    {
        std::lock_guard<std::mutex> lock(m);
        gated.erase(name);
        cv.notify_all();
    }

    void
    awaitStart(const std::string& name)
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] {
            return std::find(started.begin(), started.end(), name) !=
                   started.end();
        });
    }

    std::vector<std::string>
    startOrder()
    {
        std::lock_guard<std::mutex> lock(m);
        return started;
    }
};

class FakeKernel : public Benchmark
{
  public:
    FakeKernel(std::string name, FakeControl* control)
        : control_(control)
    {
        info_.name = std::move(name);
    }

    const Info& info() const override { return info_; }
    void prepare(DatasetSize) override {}

    u64
    run(ThreadPool&) override
    {
        control_->recordStart(info_.name);
        if (info_.name.rfind("boom", 0) == 0) {
            throw InputError("kernel exploded: " + info_.name);
        }
        return 1;
    }

    u64 characterize(CharProbe&) override { return 0; }
    std::vector<u64> taskWork() override { return {1}; }

  private:
    Info info_;
    FakeControl* control_;
};

Scheduler::Config
fakeConfig(FakeControl* control, std::vector<std::string> names,
           unsigned workers, size_t queue_depth)
{
    Scheduler::Config config;
    config.workers = workers;
    config.queue_depth = queue_depth;
    config.kernels = names;
    config.kernel_factory = [control](const std::string& name) {
        return std::make_unique<FakeKernel>(name, control);
    };
    return config;
}

/** Scheduler + Server on an ephemeral loopback port. */
struct TestServer
{
    FakeControl control;
    Scheduler scheduler;
    Server server;

    TestServer(std::vector<std::string> kernels, unsigned workers,
               size_t queue_depth, ServerConfig server_config = {})
        : scheduler(fakeConfig(&control, std::move(kernels), workers,
                               queue_depth)),
          server(&scheduler, std::move(server_config))
    {
    }

    Connection
    connect()
    {
        return Connection::connectTo("127.0.0.1", server.port(), 1.0);
    }
};

std::string
roundTrip(Connection& conn, const std::string& request)
{
    conn.writeLine(request);
    std::string reply;
    EXPECT_TRUE(conn.readLine(&reply)) << "no reply to " << request;
    return reply;
}

// ---------------------------------------------------------------------
// Server end-to-end

TEST(NetServer, SubmitStatusWaitRoundTrip)
{
    TestServer ts({"a"}, 1, 8);
    Connection conn = ts.connect();
    const std::string submit = roundTrip(conn, "SUBMIT a");
    EXPECT_EQ(submit.rfind("OK 1 ", 0), 0u) << submit;
    const std::string wait = roundTrip(conn, "WAIT 1");
    EXPECT_EQ(wait.rfind("OK 1 done", 0), 0u) << wait;
    EXPECT_NE(wait.find("tasks=1"), std::string::npos) << wait;
    const std::string status = roundTrip(conn, "STATUS 1");
    EXPECT_EQ(status.rfind("OK 1 done", 0), 0u) << status;
    const std::string stats = roundTrip(conn, "STATS");
    EXPECT_EQ(stats.rfind("OK workers=1", 0), 0u) << stats;
    EXPECT_NE(stats.find("submitted=1"), std::string::npos) << stats;
}

TEST(NetServer, StatsReplyKeepsLegacyFieldsAndAppendsLatency)
{
    TestServer ts({"a"}, 1, 8);
    Connection conn = ts.connect();
    roundTrip(conn, "SUBMIT a");
    roundTrip(conn, "WAIT 1");
    const std::string stats = roundTrip(conn, "STATS");
    EXPECT_EQ(stats.rfind("OK workers=1", 0), 0u) << stats;
    // The legacy counters stay where parsers expect them...
    for (const char* key :
         {" queue_depth=", " submitted=1", " rejected=", " completed=1",
          " failed=", " cancelled=", " queued=", " running=",
          " peak_workers_busy="}) {
        EXPECT_NE(stats.find(key), std::string::npos)
            << key << " missing in: " << stats;
    }
    // ...and the latency snapshot is appended after all of them.
    EXPECT_NE(stats.find(" lat_jobs=1"), std::string::npos) << stats;
    EXPECT_GT(stats.find(" lat_jobs="),
              stats.find(" peak_workers_busy="));
    for (const std::string prefix :
         {"queue_wait", "prepare", "run", "e2e"}) {
        for (const char* suffix : {"_p50_ms=", "_p95_ms=", "_p99_ms="}) {
            EXPECT_NE(stats.find(' ' + prefix + suffix),
                      std::string::npos)
                << prefix << suffix << " missing in: " << stats;
        }
    }
}

TEST(NetServer, DispatchesStrictPriorityOrderOverTheWire)
{
    // The acceptance scenario: one worker pinned by a gated job, then
    // a batch, a normal and a high job submitted over TCP in that
    // order must dispatch high -> normal -> batch.
    TestServer ts({"R", "B", "N", "H"}, 1, 8);
    ts.control.gated.insert("R");
    Connection conn = ts.connect();
    EXPECT_EQ(roundTrip(conn, "SUBMIT R").rfind("OK 1 ", 0), 0u);
    ts.control.awaitStart("R"); // worker busy; queue is empty
    EXPECT_EQ(roundTrip(conn, "SUBMIT B priority=batch")
                  .rfind("OK 2 ", 0),
              0u);
    EXPECT_EQ(roundTrip(conn, "SUBMIT N priority=normal")
                  .rfind("OK 3 ", 0),
              0u);
    EXPECT_EQ(roundTrip(conn, "SUBMIT H priority=high")
                  .rfind("OK 4 ", 0),
              0u);
    ts.control.release("R");
    for (int id = 1; id <= 4; ++id) {
        const std::string reply =
            roundTrip(conn, "WAIT " + std::to_string(id));
        EXPECT_EQ(reply.rfind("OK", 0), 0u) << reply;
    }
    EXPECT_EQ(ts.control.startOrder(),
              (std::vector<std::string>{"R", "H", "N", "B"}));
}

TEST(NetServer, QueueFullBecomesErrNotAHang)
{
    TestServer ts({"gate", "a"}, 1, 1);
    ts.control.gated.insert("gate");
    Connection conn = ts.connect();
    EXPECT_EQ(roundTrip(conn, "SUBMIT gate").rfind("OK 1 ", 0), 0u);
    ts.control.awaitStart("gate");
    EXPECT_EQ(roundTrip(conn, "SUBMIT a").rfind("OK 2 ", 0), 0u);
    const std::string reply = roundTrip(conn, "SUBMIT a");
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("queue full"), std::string::npos) << reply;
    ts.control.release("gate");
}

TEST(NetServer, SubmitParseErrorsBecomeErr)
{
    TestServer ts({"a"}, 1, 4);
    Connection conn = ts.connect();
    const std::string unknown = roundTrip(conn, "SUBMIT nosuch");
    EXPECT_EQ(unknown.rfind("ERR ", 0), 0u) << unknown;
    EXPECT_NE(unknown.find("unknown kernel"), std::string::npos);
    const std::string bad_key =
        roundTrip(conn, "SUBMIT a colour=blue");
    EXPECT_EQ(bad_key.rfind("ERR ", 0), 0u) << bad_key;
    const std::string garbage = roundTrip(conn, "FROBNICATE");
    EXPECT_EQ(garbage.rfind("ERR ", 0), 0u) << garbage;
    // The session survives every ERR: a good request still works.
    EXPECT_EQ(roundTrip(conn, "SUBMIT a").rfind("OK 1 ", 0), 0u);
}

TEST(NetServer, WaitTimesOutWithStatus)
{
    TestServer ts({"gate"}, 1, 4);
    ts.control.gated.insert("gate");
    Connection conn = ts.connect();
    EXPECT_EQ(roundTrip(conn, "SUBMIT gate").rfind("OK 1 ", 0), 0u);
    ts.control.awaitStart("gate");
    const std::string reply = roundTrip(conn, "WAIT 1 0.05");
    EXPECT_EQ(reply, "TIMEOUT 1 running") << reply;
    ts.control.release("gate");
    EXPECT_EQ(roundTrip(conn, "WAIT 1").rfind("OK 1 done", 0), 0u);
}

TEST(NetServer, CancelQueuedButNotRunning)
{
    TestServer ts({"gate", "a"}, 1, 8);
    ts.control.gated.insert("gate");
    Connection conn = ts.connect();
    EXPECT_EQ(roundTrip(conn, "SUBMIT gate").rfind("OK 1 ", 0), 0u);
    ts.control.awaitStart("gate");
    EXPECT_EQ(roundTrip(conn, "SUBMIT a").rfind("OK 2 ", 0), 0u);
    EXPECT_EQ(roundTrip(conn, "CANCEL 2"), "OK 2 cancelled");
    const std::string running = roundTrip(conn, "CANCEL 1");
    EXPECT_EQ(running.rfind("ERR ", 0), 0u) << running;
    EXPECT_NE(running.find("not cancellable"), std::string::npos);
    const std::string unknown = roundTrip(conn, "CANCEL 99");
    EXPECT_NE(unknown.find("unknown job id"), std::string::npos);
    ts.control.release("gate");
}

TEST(NetServer, JobIdsAreSharedAcrossConnections)
{
    TestServer ts({"a"}, 1, 8);
    Connection submitter = ts.connect();
    EXPECT_EQ(roundTrip(submitter, "SUBMIT a").rfind("OK 1 ", 0), 0u);
    Connection watcher = ts.connect();
    const std::string reply = roundTrip(watcher, "WAIT 1");
    EXPECT_EQ(reply.rfind("OK 1 done", 0), 0u) << reply;
}

TEST(NetServer, DrainRunsEverythingAndFlagsShutdown)
{
    TestServer ts({"a"}, 2, 8);
    Connection conn = ts.connect();
    for (int i = 1; i <= 4; ++i) {
        EXPECT_EQ(roundTrip(conn, "SUBMIT a")
                      .rfind("OK " + std::to_string(i), 0),
                  0u);
    }
    EXPECT_EQ(roundTrip(conn, "DRAIN"), "OK drained");
    EXPECT_TRUE(ts.server.waitShutdownRequestedFor(1.0));
    // Admissions are closed after a drain.
    const std::string late = roundTrip(conn, "SUBMIT a");
    EXPECT_EQ(late.rfind("ERR ", 0), 0u) << late;
    ts.server.stop();
    const auto jobs = ts.server.jobs();
    ASSERT_EQ(jobs.size(), 4u);
    for (const auto& [id, handle] : jobs) {
        EXPECT_EQ(handle.status(), JobStatus::kDone) << id;
    }
}

TEST(NetServer, SessionLimitShedsConnections)
{
    ServerConfig config;
    config.max_sessions = 1;
    TestServer ts({"a"}, 1, 4, config);
    Connection first = ts.connect();
    // The first session must be live before the second connects.
    EXPECT_EQ(roundTrip(first, "STATS").rfind("OK ", 0), 0u);
    Connection second = ts.connect();
    std::string reply;
    ASSERT_TRUE(second.readLine(&reply));
    EXPECT_EQ(reply.rfind("ERR server busy", 0), 0u) << reply;
    // The shed connection is closed; the first still works.
    EXPECT_FALSE(second.readLine(&reply));
    EXPECT_EQ(roundTrip(first, "SUBMIT a").rfind("OK 1 ", 0), 0u);
}

TEST(NetServer, StopUnblocksIdleSessions)
{
    auto ts = std::make_unique<TestServer>(
        std::vector<std::string>{"a"}, 1, 4);
    Connection conn = ts->connect();
    EXPECT_EQ(roundTrip(conn, "STATS").rfind("OK ", 0), 0u);
    // The session is blocked in readLine; stop() must wake and join
    // it without waiting for a read timeout.
    ts->server.stop();
    std::string line;
    EXPECT_FALSE(conn.readLine(&line)); // server went away
    ts.reset();
}

// ---------------------------------------------------------------------
// Line client

TEST(NetClient, RunsAJobFileEndToEnd)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gb_net_client_jobs.txt";
    {
        std::ofstream out(path);
        out << "# client test jobs\n"
               "a priority=high\n"
               "a priority=batch\n"
               "\n"
               "a\n";
    }
    TestServer ts({"a"}, 2, 8);
    net::ClientOptions options;
    options.host = "127.0.0.1";
    options.port = ts.server.port();
    options.jobs_path = path.string();
    options.drain = true;
    std::ostringstream out;
    EXPECT_EQ(net::runClient(options, out), 0) << out.str();
    const std::string log = out.str();
    EXPECT_NE(log.find("OK 1 "), std::string::npos) << log;
    EXPECT_NE(log.find("OK 3 done"), std::string::npos) << log;
    EXPECT_NE(log.find("OK drained"), std::string::npos) << log;
    EXPECT_TRUE(ts.server.waitShutdownRequestedFor(1.0));
    std::filesystem::remove(path);
}

TEST(NetClient, ReportsFailuresInExitCode)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gb_net_client_bad_jobs.txt";
    {
        std::ofstream out(path);
        out << "boom\n" // fails at run time
               "a\n";
    }
    TestServer ts({"boom", "a"}, 1, 8);
    net::ClientOptions options;
    options.host = "127.0.0.1";
    options.port = ts.server.port();
    options.jobs_path = path.string();
    std::ostringstream out;
    EXPECT_EQ(net::runClient(options, out), 1) << out.str();
    EXPECT_NE(out.str().find("OK 1 failed"), std::string::npos)
        << out.str();
    std::filesystem::remove(path);
}

} // namespace
} // namespace gb
