/**
 * @file
 * Tests for the NN inference engine: layers, CTC decoders, and the
 * Bonito/Clair model assemblies.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nn/bonito.h"
#include "nn/clair.h"
#include "nn/ctc.h"
#include "nn/layers.h"
#include "pileup/pileup.h"
#include "util/rng.h"

namespace gb {
namespace {

TEST(Layers, ConvShapeAndDeterminism)
{
    Conv1d conv(4, 8, 5, 1, 1, Activation::kNone, 7);
    Tensor2 input(100, 4);
    Rng rng(1);
    for (auto& v : input.data) v = static_cast<float>(rng.normal());
    NullProbe probe;
    const Tensor2 a = conv.forward(input, probe);
    const Tensor2 b = conv.forward(input, probe);
    EXPECT_EQ(a.rows, 100u);
    EXPECT_EQ(a.cols, 8u);
    EXPECT_EQ(a.data, b.data);
}

TEST(Layers, ConvStrideDownsamples)
{
    Conv1d conv(1, 2, 5, 3, 1, Activation::kNone, 7);
    Tensor2 input(100, 1);
    NullProbe probe;
    EXPECT_EQ(conv.forward(input, probe).rows, 34u); // ceil(100/3)
}

TEST(Layers, DepthwiseConvIsPerChannel)
{
    // groups == channels: each output channel depends only on its own
    // input channel.
    Conv1d conv(2, 2, 3, 1, 2, Activation::kNone, 11);
    Tensor2 a(20, 2);
    Tensor2 b(20, 2);
    Rng rng(2);
    for (u32 t = 0; t < 20; ++t) {
        a.at(t, 0) = static_cast<float>(rng.normal());
        a.at(t, 1) = static_cast<float>(rng.normal());
        b.at(t, 0) = a.at(t, 0);
        b.at(t, 1) = a.at(t, 1) + 5.0f; // perturb channel 1 only
    }
    NullProbe probe;
    const Tensor2 ra = conv.forward(a, probe);
    const Tensor2 rb = conv.forward(b, probe);
    for (u32 t = 0; t < 20; ++t) {
        EXPECT_FLOAT_EQ(ra.at(t, 0), rb.at(t, 0)); // ch0 unaffected
    }
}

TEST(Layers, ConvRejectsBadConfig)
{
    EXPECT_THROW(Conv1d(4, 8, 3, 1, 3, Activation::kNone, 1),
                 InputError);
    Conv1d conv(4, 8, 3, 1, 1, Activation::kNone, 1);
    Tensor2 wrong(10, 5);
    NullProbe probe;
    EXPECT_THROW(conv.forward(wrong, probe), InputError);
}

TEST(Layers, DenseLinearity)
{
    Dense dense(6, 3, Activation::kNone, 13);
    Tensor2 x(1, 6);
    Tensor2 zero(1, 6);
    Rng rng(3);
    for (auto& v : x.data) v = static_cast<float>(rng.normal());
    NullProbe probe;
    const Tensor2 fx = dense.forward(x, probe);
    const Tensor2 f0 = dense.forward(zero, probe);
    // f(2x) - f(0) == 2 (f(x) - f(0)).
    Tensor2 x2 = x;
    for (auto& v : x2.data) v *= 2.0f;
    const Tensor2 f2x = dense.forward(x2, probe);
    for (u32 c = 0; c < 3; ++c) {
        EXPECT_NEAR(f2x.at(0, c) - f0.at(0, c),
                    2.0f * (fx.at(0, c) - f0.at(0, c)), 1e-4f);
    }
}

TEST(Layers, ReluClampsNegative)
{
    Tensor2 t(1, 4);
    t.data = {-1.0f, 0.0f, 2.0f, -3.0f};
    NullProbe probe;
    applyActivation(t, Activation::kRelu, probe);
    const std::vector<float> expected{0.0f, 0.0f, 2.0f, 0.0f};
    EXPECT_EQ(t.data, expected);
}

TEST(Layers, BiLstmShapeAndDirectionality)
{
    BiLstm lstm(4, 8, 17);
    Tensor2 x(12, 4);
    Rng rng(4);
    for (auto& v : x.data) v = static_cast<float>(rng.normal());
    NullProbe probe;
    const Tensor2 h = lstm.forward(x, probe);
    EXPECT_EQ(h.rows, 12u);
    EXPECT_EQ(h.cols, 16u);

    // Perturb the last timestep: forward outputs at t=0 must be
    // unchanged (causality), backward outputs at t=0 must change.
    Tensor2 x2 = x;
    x2.at(11, 0) += 10.0f;
    const Tensor2 h2 = lstm.forward(x2, probe);
    for (u32 c = 0; c < 8; ++c) {
        EXPECT_FLOAT_EQ(h.at(0, c), h2.at(0, c));
    }
    float back_delta = 0.0f;
    for (u32 c = 8; c < 16; ++c) {
        back_delta += std::abs(h.at(0, c) - h2.at(0, c));
    }
    EXPECT_GT(back_delta, 1e-4f);
}

TEST(Softmax, RowsSumToOne)
{
    Tensor2 t(3, 5);
    Rng rng(5);
    for (auto& v : t.data) v = static_cast<float>(rng.normal(0, 3));
    softmaxRows(t);
    for (u32 r = 0; r < 3; ++r) {
        float sum = 0.0f;
        for (u32 c = 0; c < 5; ++c) {
            sum += t.at(r, c);
            EXPECT_GE(t.at(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

/** Build a [T][5] tensor from a class index sequence (one-hot-ish). */
Tensor2
framesOf(const std::vector<u32>& classes, float confidence = 0.9f)
{
    Tensor2 t(static_cast<u32>(classes.size()), kCtcClasses);
    const float rest = (1.0f - confidence) / (kCtcClasses - 1);
    for (u32 r = 0; r < t.rows; ++r) {
        for (u32 c = 0; c < kCtcClasses; ++c) {
            t.at(r, c) = c == classes[r] ? confidence : rest;
        }
    }
    return t;
}

TEST(Ctc, GreedyCollapsesRepeatsAndBlanks)
{
    // blank A A blank C C C blank G T -> "ACGT".
    const Tensor2 probs =
        framesOf({0, 1, 1, 0, 2, 2, 2, 0, 3, 4});
    EXPECT_EQ(ctcGreedyDecode(probs), "ACGT");
}

TEST(Ctc, GreedyRepeatWithBlankSeparatorEmitsTwice)
{
    // A blank A -> "AA".
    EXPECT_EQ(ctcGreedyDecode(framesOf({1, 0, 1})), "AA");
}

TEST(Ctc, GreedyEmptyOnAllBlanks)
{
    EXPECT_EQ(ctcGreedyDecode(framesOf({0, 0, 0, 0})), "");
}

TEST(Ctc, BeamMatchesGreedyOnConfidentFrames)
{
    Rng rng(6);
    std::vector<u32> classes;
    for (int i = 0; i < 40; ++i) {
        classes.push_back(static_cast<u32>(rng.below(5)));
    }
    const Tensor2 probs = framesOf(classes, 0.95f);
    EXPECT_EQ(ctcBeamDecode(probs, 8), ctcGreedyDecode(probs));
}

TEST(Ctc, BeamBeatsGreedyOnMergedMass)
{
    // Classic CTC case: per-frame argmax is blank, but the summed
    // probability of "A" beats the blank path.
    Tensor2 probs(2, kCtcClasses);
    // frame 0: blank 0.4, A 0.35, C 0.25
    probs.at(0, 0) = 0.4f;
    probs.at(0, 1) = 0.35f;
    probs.at(0, 2) = 0.25f;
    // frame 1: blank 0.4, A 0.35, C 0.25
    probs.at(1, 0) = 0.4f;
    probs.at(1, 1) = 0.35f;
    probs.at(1, 2) = 0.25f;
    EXPECT_EQ(ctcGreedyDecode(probs), "");
    // P("") = 0.16; P("A") = 0.35*0.4 + 0.4*0.35 + 0.35*0.35 = 0.4025.
    EXPECT_EQ(ctcBeamDecode(probs, 4), "A");
}

TEST(Bonito, ForwardShapeAndDeterminism)
{
    BonitoModel model;
    Tensor2 chunk(999, 1);
    Rng rng(7);
    for (auto& v : chunk.data) v = static_cast<float>(rng.normal());
    NullProbe probe;
    const Tensor2 a = model.forward(chunk, probe);
    EXPECT_EQ(a.rows, 333u); // stride-3 downsample
    EXPECT_EQ(a.cols, kCtcClasses);
    for (u32 r = 0; r < a.rows; ++r) {
        float sum = 0.0f;
        for (u32 c = 0; c < a.cols; ++c) sum += a.at(r, c);
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
    const Tensor2 b = model.forward(chunk, probe);
    EXPECT_EQ(a.data, b.data);
}

TEST(Bonito, BasecallChunksAndStitches)
{
    BonitoModel model;
    Rng rng(8);
    std::vector<float> samples(9000);
    for (auto& v : samples) {
        v = static_cast<float>(rng.normal(90, 12));
    }
    NullProbe probe;
    const std::string seq = model.basecall(samples, probe);
    // Untrained weights produce arbitrary but valid base strings.
    for (char c : seq) {
        EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
    // Deterministic across calls.
    EXPECT_EQ(seq, model.basecall(samples, probe));
    EXPECT_GT(model.macsPerChunk(), 1'000'000u);
}

TEST(Bonito, BeamDecoderProducesValidSequence)
{
    BonitoModel model;
    Rng rng(12);
    std::vector<float> samples(4500);
    for (auto& v : samples) {
        v = static_cast<float>(rng.normal(90, 12));
    }
    NullProbe probe;
    const std::string beam = model.basecall(
        samples, probe, BonitoModel::Decoder::kBeam, 4);
    for (char c : beam) {
        EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
    // Deterministic across calls.
    EXPECT_EQ(beam, model.basecall(samples, probe,
                                   BonitoModel::Decoder::kBeam, 4));
    // With near-uniform (untrained) frame probabilities, beam search
    // recovers sequence mass that greedy's blank-argmax collapses —
    // it must therefore never be shorter.
    const std::string greedy = model.basecall(
        samples, probe, BonitoModel::Decoder::kGreedy);
    EXPECT_GE(beam.size(), greedy.size());
}

TEST(Bonito, NormalizeSignalCentersAndScales)
{
    Rng rng(9);
    std::vector<float> samples(5000);
    for (auto& v : samples) {
        v = static_cast<float>(rng.normal(100, 15));
    }
    const auto norm = normalizeSignal(samples);
    double sum = 0.0;
    double sq = 0.0;
    for (float v : norm) {
        sum += v;
        sq += static_cast<double>(v) * v;
    }
    const double mean = sum / static_cast<double>(norm.size());
    const double sd = std::sqrt(sq / static_cast<double>(norm.size()) -
                                mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(sd, 1.0, 0.15);
}

TEST(Clair, PredictShapeAndValidity)
{
    ClairModel model;
    std::vector<float> features(kClairFeatureSize, 0.1f);
    NullProbe probe;
    const ClairOutput out = model.predict(features, probe);
    auto checkHead = [](const auto& head) {
        float sum = 0.0f;
        for (float v : head) {
            EXPECT_GE(v, 0.0f);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
    };
    checkHead(out.alt_base);
    checkHead(out.zygosity);
    checkHead(out.var_type);
    checkHead(out.indel_len);

    EXPECT_THROW(model.predict(std::vector<float>(10, 0.0f), probe),
                 InputError);
}

TEST(Clair, BatchMatchesSingle)
{
    ClairModel model;
    Rng rng(10);
    std::vector<std::vector<float>> batch;
    for (int i = 0; i < 5; ++i) {
        std::vector<float> f(kClairFeatureSize);
        for (auto& v : f) v = static_cast<float>(rng.uniform());
        batch.push_back(std::move(f));
    }
    NullProbe probe;
    const auto outs = model.predictBatch(batch, probe);
    ASSERT_EQ(outs.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        const auto single = model.predict(batch[i], probe);
        EXPECT_EQ(outs[i].alt_base, single.alt_base);
    }
}

TEST(Clair, OutputDependsOnInput)
{
    ClairModel model;
    NullProbe probe;
    std::vector<float> a(kClairFeatureSize, 0.0f);
    std::vector<float> b(kClairFeatureSize, 0.9f);
    const auto oa = model.predict(a, probe);
    const auto ob = model.predict(b, probe);
    float delta = 0.0f;
    for (int i = 0; i < 4; ++i) {
        delta += std::abs(oa.alt_base[static_cast<size_t>(i)] -
                          ob.alt_base[static_cast<size_t>(i)]);
    }
    EXPECT_GT(delta, 1e-4f);
}

} // namespace
} // namespace gb
