/**
 * @file
 * Tests for the PairHMM kernel: unscaled long-double oracle, float vs
 * double consistency, likelihood monotonicity, underflow fallback.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "io/dna.h"
#include "phmm/pairhmm.h"
#include "util/rng.h"

namespace gb {
namespace {

/** Unscaled, unoptimized forward oracle in long double. */
long double
oracleForward(const std::vector<u8>& read, const std::vector<u8>& quals,
              const std::vector<u8>& hap, const PhmmParams& params)
{
    const size_t m = read.size();
    const size_t n = hap.size();
    const long double gop = qualToErrorProb(params.gap_open_qual);
    const long double gcp = qualToErrorProb(params.gap_continue_qual);
    const long double mm = 1.0L - 2.0L * gop;
    const long double im = 1.0L - gcp;

    std::vector<std::vector<long double>> M(
        m + 1, std::vector<long double>(n + 1, 0.0L));
    auto I = M;
    auto D = M;
    for (size_t j = 0; j <= n; ++j) D[0][j] = 1.0L / n;

    for (size_t i = 1; i <= m; ++i) {
        const long double err = qualToErrorProb(quals[i - 1]);
        for (size_t j = 1; j <= n; ++j) {
            const bool match = read[i - 1] == hap[j - 1];
            const long double prior = match ? 1.0L - err : err / 3.0L;
            M[i][j] = prior * (M[i - 1][j - 1] * mm +
                               (I[i - 1][j - 1] + D[i - 1][j - 1]) * im);
            I[i][j] = M[i - 1][j] * gop + I[i - 1][j] * gcp;
            D[i][j] = M[i][j - 1] * gop + D[i][j - 1] * gcp;
        }
    }
    long double sum = 0.0L;
    for (size_t j = 1; j <= n; ++j) sum += M[m][j] + I[m][j];
    return sum;
}

std::vector<u8>
uniformQuals(size_t len, u8 q)
{
    return std::vector<u8>(len, q);
}

TEST(PairHmm, MatchesUnscaledOracle)
{
    Rng rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        const size_t rlen = 10 + rng.below(30);
        const size_t hlen = rlen + rng.below(20);
        std::vector<u8> hap(hlen);
        for (auto& c : hap) c = static_cast<u8>(rng.below(4));
        std::vector<u8> read(hap.begin(),
                             hap.begin() + static_cast<i64>(rlen));
        for (auto& c : read) {
            if (rng.chance(0.1)) c = static_cast<u8>(rng.below(4));
        }
        std::vector<u8> quals(rlen);
        for (auto& q : quals) q = 20 + static_cast<u8>(rng.below(20));

        const auto result = pairHmmLogLikelihood(read, quals, hap);
        const long double oracle =
            oracleForward(read, quals, hap, PhmmParams{});
        EXPECT_NEAR(result.log10_likelihood,
                    static_cast<double>(std::log10(oracle)), 1e-3);
    }
}

TEST(PairHmm, PerfectMatchLikelihoodDominates)
{
    const auto hap = encodeDna("ACGTACGTACGTACGTACGT");
    const auto read = encodeDna("ACGTACGTAC");
    const auto mismatched = encodeDna("ACGTACGTTT");
    const auto quals = uniformQuals(10, 30);

    const double good =
        pairHmmLogLikelihood(read, quals, hap).log10_likelihood;
    const double bad =
        pairHmmLogLikelihood(mismatched, quals, hap).log10_likelihood;
    EXPECT_GT(good, bad);
}

TEST(PairHmm, MonotoneUnderAddedMismatches)
{
    Rng rng(42);
    std::vector<u8> hap(120);
    for (auto& c : hap) c = static_cast<u8>(rng.below(4));
    std::vector<u8> read(hap.begin(), hap.begin() + 80);
    const auto quals = uniformQuals(80, 25);

    double prev = pairHmmLogLikelihood(read, quals, hap)
                      .log10_likelihood;
    // Progressively corrupt bases; likelihood must not increase.
    for (int step = 0; step < 6; ++step) {
        const size_t pos = 5 + static_cast<size_t>(step) * 12;
        read[pos] = static_cast<u8>((read[pos] + 1) % 4);
        const double cur = pairHmmLogLikelihood(read, quals, hap)
                               .log10_likelihood;
        EXPECT_LT(cur, prev + 1e-9) << "step " << step;
        prev = cur;
    }
}

TEST(PairHmm, LikelihoodIsAProbability)
{
    Rng rng(43);
    for (int trial = 0; trial < 15; ++trial) {
        std::vector<u8> hap(30 + rng.below(100));
        std::vector<u8> read(10 + rng.below(60));
        for (auto& c : hap) c = static_cast<u8>(rng.below(4));
        for (auto& c : read) c = static_cast<u8>(rng.below(4));
        const auto quals = uniformQuals(read.size(), 30);
        const auto r = pairHmmLogLikelihood(read, quals, hap);
        EXPECT_LE(r.log10_likelihood, 0.0);
        EXPECT_TRUE(std::isfinite(r.log10_likelihood));
    }
}

TEST(PairHmm, LowQualityFlattensLikelihoodGap)
{
    // With very low base qualities a mismatch costs little.
    const auto hap = encodeDna("ACGTACGTACGTACGTACGTACGTACGT");
    auto read = encodeDna("ACGTACGTACGTAC");
    auto read_mm = read;
    read_mm[7] = static_cast<u8>((read_mm[7] + 1) % 4);

    const auto q_hi = uniformQuals(read.size(), 40);
    const auto q_lo = uniformQuals(read.size(), 5);

    const double gap_hi =
        pairHmmLogLikelihood(read, q_hi, hap).log10_likelihood -
        pairHmmLogLikelihood(read_mm, q_hi, hap).log10_likelihood;
    const double gap_lo =
        pairHmmLogLikelihood(read, q_lo, hap).log10_likelihood -
        pairHmmLogLikelihood(read_mm, q_lo, hap).log10_likelihood;
    EXPECT_GT(gap_hi, gap_lo);
    EXPECT_GT(gap_lo, 0.0);
}

TEST(PairHmm, DoubleFallbackOnLongDivergentRead)
{
    // A long read of persistent mismatches underflows the float path;
    // the kernel must fall back to double and return a finite value.
    std::vector<u8> hap(3000, 0);            // poly-A
    std::vector<u8> read(2500, 3);           // poly-T
    const auto quals = uniformQuals(read.size(), 40);
    const auto r = pairHmmLogLikelihood(read, quals, hap);
    EXPECT_TRUE(r.used_double);
    EXPECT_TRUE(std::isfinite(r.log10_likelihood));
    EXPECT_LT(r.log10_likelihood, -100.0);
}

TEST(PairHmm, FloatPathUsedForTypicalReads)
{
    Rng rng(44);
    std::vector<u8> hap(400);
    for (auto& c : hap) c = static_cast<u8>(rng.below(4));
    std::vector<u8> read(hap.begin() + 50, hap.begin() + 200);
    const auto quals = uniformQuals(read.size(), 30);
    const auto r = pairHmmLogLikelihood(read, quals, hap);
    EXPECT_FALSE(r.used_double);
}

TEST(PairHmm, InputValidation)
{
    const auto hap = encodeDna("ACGT");
    const auto read = encodeDna("AC");
    std::vector<u8> bad_quals{30};
    EXPECT_THROW(pairHmmLogLikelihood(read, bad_quals, hap), InputError);
    const std::vector<u8> empty;
    const std::vector<u8> q2{30, 30};
    EXPECT_THROW(pairHmmLogLikelihood(empty, empty, hap), InputError);
    EXPECT_THROW(pairHmmLogLikelihood(read, q2, empty), InputError);
}

TEST(PhmmTask, CellUpdateAccounting)
{
    PhmmTask task;
    task.reads.push_back({std::vector<u8>(10, 0),
                          std::vector<u8>(10, 30)});
    task.reads.push_back({std::vector<u8>(20, 1),
                          std::vector<u8>(20, 30)});
    task.haplotypes.push_back(std::vector<u8>(50, 0));
    task.haplotypes.push_back(std::vector<u8>(70, 2));
    EXPECT_EQ(task.cellUpdates(), 10u * 120 + 20u * 120);

    NullProbe probe;
    const auto matrix = runPhmmTask(task, PhmmParams{}, probe);
    EXPECT_EQ(matrix.size(), 4u);
}

} // namespace
} // namespace gb
