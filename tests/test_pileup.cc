/**
 * @file
 * Tests for pileup counting, Clair feature tensors and the threshold
 * SNV caller — including an end-to-end recovery of injected variants
 * from simulated reads.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "io/dna.h"
#include "pileup/pileup.h"
#include "simdata/genome.h"
#include "simdata/reads.h"
#include "simdata/variants.h"
#include "util/rng.h"

namespace gb {
namespace {

AlnRecord
makeRecord(const std::string& name, u64 pos, const std::string& cigar,
           const std::string& seq, bool reverse = false)
{
    AlnRecord rec;
    rec.qname = name;
    rec.pos = pos;
    rec.reverse = reverse;
    rec.cigar = Cigar::parse(cigar);
    rec.seq = seq;
    rec.validate();
    return rec;
}

TEST(Pileup, SimpleMatchCounts)
{
    std::vector<AlnRecord> records;
    records.push_back(makeRecord("r1", 0, "4M", "ACGT"));
    records.push_back(makeRecord("r2", 1, "3M", "CGT", true));

    const auto pileup = countPileup(records, 0, 4);
    EXPECT_EQ(pileup.reads_processed, 2u);
    EXPECT_EQ(pileup.columns[0].base_fwd[0], 1u); // A fwd
    EXPECT_EQ(pileup.columns[1].base_fwd[1], 1u); // C fwd
    EXPECT_EQ(pileup.columns[1].base_rev[1], 1u); // C rev
    EXPECT_EQ(pileup.columns[3].depth(), 2u);
}

TEST(Pileup, InsertionAndDeletionCounts)
{
    std::vector<AlnRecord> records;
    // 2M 2I 2M: insertion after reference position 1.
    records.push_back(makeRecord("ins", 0, "2M2I2M", "ACTTGT"));
    // 2M 2D 2M: deletion covering positions 2-3.
    records.push_back(makeRecord("del", 0, "2M2D2M", "ACGT"));

    const auto pileup = countPileup(records, 0, 6);
    EXPECT_EQ(pileup.columns[1].ins_fwd, 1u);
    EXPECT_EQ(pileup.columns[2].del_fwd, 1u);
    EXPECT_EQ(pileup.columns[3].del_fwd, 1u);
    // Deleted positions still count toward depth.
    EXPECT_EQ(pileup.columns[2].depth(), 2u);
}

TEST(Pileup, SoftClipsConsumeQueryOnly)
{
    std::vector<AlnRecord> records;
    records.push_back(makeRecord("sc", 2, "2S3M1S", "TTACGC"));
    const auto pileup = countPileup(records, 0, 8);
    EXPECT_EQ(pileup.columns[2].base_fwd[0], 1u); // A at ref pos 2
    EXPECT_EQ(pileup.columns[3].base_fwd[1], 1u); // C
    EXPECT_EQ(pileup.columns[4].base_fwd[2], 1u); // G
    EXPECT_EQ(pileup.columns[5].depth(), 0u);
}

TEST(Pileup, RegionClipping)
{
    std::vector<AlnRecord> records;
    records.push_back(makeRecord("left", 0, "10M", "ACGTACGTAC"));
    records.push_back(makeRecord("inside", 12, "4M", "ACGT"));
    records.push_back(makeRecord("outside", 40, "4M", "ACGT"));

    const auto pileup = countPileup(records, 10, 10);
    EXPECT_EQ(pileup.reads_processed, 1u); // only "inside" overlaps
    EXPECT_EQ(pileup.columns[2].base_fwd[0], 1u);
}

TEST(Pileup, ReadSpanningRegionBoundaryIsClipped)
{
    std::vector<AlnRecord> records;
    records.push_back(makeRecord("span", 8, "8M", "ACGTACGT"));
    const auto pileup = countPileup(records, 10, 4);
    // Bases at ref 10..13 = read offsets 2..5: G T A C.
    EXPECT_EQ(pileup.columns[0].base_fwd[2], 1u);
    EXPECT_EQ(pileup.columns[1].base_fwd[3], 1u);
    EXPECT_EQ(pileup.columns[2].base_fwd[0], 1u);
    EXPECT_EQ(pileup.columns[3].base_fwd[1], 1u);
}

TEST(ClairFeatures, ShapeAndNormalization)
{
    std::vector<AlnRecord> records;
    for (int i = 0; i < 10; ++i) {
        records.push_back(makeRecord("r" + std::to_string(i), 0, "40M",
                                     std::string(40, 'A')));
    }
    const auto pileup = countPileup(records, 0, 40);
    const std::vector<u8> ref(40, 0); // all A
    const auto tensor = clairFeatures(pileup, ref, 20);
    ASSERT_EQ(tensor.size(), kClairFeatureSize);
    for (float v : tensor) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    // Channel (A, fwd) raw encoding at the center should be 1.0.
    const u32 center_w = 16;
    const u32 idx = (center_w * kClairCounts + 0) * kClairEncodings + 0;
    EXPECT_FLOAT_EQ(tensor[idx], 1.0f);
    // Encoding (d): ref-base support zeroed.
    EXPECT_FLOAT_EQ(tensor[idx + 3], 0.0f);
}

TEST(ClairFeatures, Validation)
{
    const auto pileup = countPileup(std::vector<AlnRecord>{}, 0, 10);
    const std::vector<u8> ref(10, 0);
    EXPECT_THROW(clairFeatures(pileup, ref, 99), InputError);
    const std::vector<u8> bad_ref(5, 0);
    EXPECT_THROW(clairFeatures(pileup, bad_ref, 5), InputError);
}

TEST(CallSnvs, RecoversInjectedVariantsFromSimulatedReads)
{
    // Full mini-pipeline: genome -> variants -> reads -> pileup ->
    // calls; the injected SNVs must be recovered.
    GenomeParams gp;
    gp.length = 20'000;
    gp.seed = 3;
    const Genome genome = generateGenome(gp);

    VariantParams vp;
    vp.snv_rate = 2e-3;
    vp.ins_rate = 0.0;
    vp.del_rate = 0.0;
    vp.het_fraction = 0.0; // homozygous only: every read carries them
    const SampleGenome sample = injectVariants(genome.seq, vp);
    ASSERT_GT(sample.truth.size(), 10u);

    ShortReadParams rp;
    rp.coverage = 40.0;
    rp.seed = 21;
    const auto reads = simulateShortReads(sample.seq, rp);
    auto alignments = toAlignments(reads);
    // Truth alignments are on the sample; with SNVs only (no indels)
    // sample coordinates equal reference coordinates.
    const auto pileup =
        countPileup(alignments, 0, genome.seq.size());
    const auto ref_codes = encodeDna(genome.seq);
    const auto calls = callSnvs(pileup, ref_codes, 0.3, 10);

    std::set<u64> truth_pos;
    for (const auto& v : sample.truth) truth_pos.insert(v.ref_pos);
    u64 recovered = 0;
    u64 false_pos = 0;
    for (const auto& call : calls) {
        if (truth_pos.count(call.pos)) {
            ++recovered;
        } else {
            ++false_pos;
        }
    }
    EXPECT_GT(static_cast<double>(recovered),
              0.95 * static_cast<double>(truth_pos.size()));
    EXPECT_LT(static_cast<double>(false_pos),
              0.05 * static_cast<double>(truth_pos.size()) + 2);
}

TEST(CallSnvs, HetHomZygosity)
{
    std::vector<AlnRecord> records;
    for (int i = 0; i < 20; ++i) {
        // Position 0: all reads carry C over ref A (hom).
        // Position 1: half carry G over ref A (het).
        const std::string seq =
            std::string("C") + (i % 2 ? "G" : "A");
        records.push_back(
            makeRecord("r" + std::to_string(i), 0, "2M", seq));
    }
    const auto pileup = countPileup(records, 0, 2);
    const std::vector<u8> ref(2, 0);
    const auto calls = callSnvs(pileup, ref, 0.25, 10);
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_FALSE(calls[0].heterozygous);
    EXPECT_EQ(calls[0].alt_base, 1u);
    EXPECT_TRUE(calls[1].heterozygous);
    EXPECT_EQ(calls[1].alt_base, 2u);
}

} // namespace
} // namespace gb
