/**
 * @file
 * Cross-module integration tests: seeding finds true read origins,
 * seed extension confirms them, dbg+phmm prefer the true haplotype,
 * abea prefers the true reference, and the prefetch variant of
 * kmer-cnt is count-identical to the baseline.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <string>

#include "abea/abea.h"
#include "abea/event_detect.h"
#include "align/banded_sw.h"
#include "dbg/debruijn.h"
#include "index/fm_index.h"
#include "io/dna.h"
#include "kmer/kmer_counter.h"
#include "phmm/pairhmm.h"
#include "simdata/genome.h"
#include "simdata/pore_model.h"
#include "simdata/reads.h"
#include "simdata/variants.h"
#include "util/rng.h"

namespace gb {
namespace {

TEST(Integration, SeedingRecoversTrueReadOrigins)
{
    GenomeParams gp;
    gp.length = 80'000;
    gp.seed = 31;
    const Genome genome = generateGenome(gp);
    const FmIndex fm = FmIndex::build(genome.seq);

    ShortReadParams rp;
    rp.coverage = 1.0;
    rp.seed = 32;
    const auto reads = simulateShortReads(genome.seq, rp);

    u64 recovered = 0;
    u64 tested = 0;
    NullProbe probe;
    for (const auto& read : reads) {
        if (tested >= 100) break;
        ++tested;
        const auto codes = encodeDna(read.record.seq);
        std::vector<Smem> seeds;
        fm.smems(std::span<const u8>(codes), 19, seeds, probe);
        bool found = false;
        for (const auto& seed : seeds) {
            for (const auto& hit : fm.locate(seed, 16)) {
                // Hit should map near the true origin on some strand.
                const i64 implied =
                    hit.reverse
                        ? static_cast<i64>(hit.pos) -
                              (static_cast<i64>(read.record.seq
                                                    .size()) -
                               seed.end)
                        : static_cast<i64>(hit.pos) - seed.begin;
                if (std::llabs(implied -
                               static_cast<i64>(read.true_pos)) <=
                    2) {
                    found = true;
                }
            }
        }
        recovered += found;
    }
    EXPECT_GE(recovered, tested * 95 / 100);
}

TEST(Integration, ExtensionScoresTrueSiteAboveDecoys)
{
    Rng rng(33);
    GenomeParams gp;
    gp.length = 50'000;
    gp.seed = 34;
    const Genome genome = generateGenome(gp);

    for (int trial = 0; trial < 20; ++trial) {
        const u64 pos = rng.below(genome.seq.size() - 400);
        std::string read = genome.seq.substr(pos, 120);
        for (auto& c : read) {
            if (rng.chance(0.02)) c = "ACGT"[rng.below(4)];
        }
        const auto q = encodeDna(read);
        const auto true_target =
            encodeDna(genome.seq.substr(pos, 140));
        const u64 decoy_pos = (pos + 17'000) % (genome.size() - 200);
        const auto decoy_target =
            encodeDna(genome.seq.substr(decoy_pos, 140));
        const i32 true_score = bandedSw(q, true_target).score;
        const i32 decoy_score = bandedSw(q, decoy_target).score;
        EXPECT_GT(true_score, decoy_score) << "trial " << trial;
        EXPECT_GT(true_score, 150);
    }
}

TEST(Integration, DbgPlusPhmmPreferTheTrueHaplotype)
{
    Rng rng(35);
    GenomeParams gp;
    gp.length = 10'000;
    gp.seed = 36;
    const Genome genome = generateGenome(gp);

    // Hom SNV at a known site; reads all carry it.
    const std::string ref_window = genome.seq.substr(4000, 400);
    std::string alt_window = ref_window;
    alt_window[200] = alt_window[200] == 'C' ? 'G' : 'C';

    AssemblyRegion region;
    region.reference = encodeDna(ref_window);
    for (int i = 0; i < 40; ++i) {
        const u64 start = rng.below(ref_window.size() - 150);
        std::string read = alt_window.substr(start, 150);
        for (auto& c : read) {
            if (rng.chance(0.002)) c = "ACGT"[rng.below(4)];
        }
        region.reads.push_back(encodeDna(read));
    }

    DbgStats stats;
    const auto haps = assembleRegion(region, DbgParams{}, stats);
    ASSERT_GE(haps.size(), 2u);

    // The alt haplotype must win total phmm likelihood.
    const auto alt_codes = encodeDna(alt_window);
    double best_sum = -1e300;
    std::vector<u8> best_hap;
    for (const auto& hap : haps) {
        double sum = 0.0;
        for (const auto& read : region.reads) {
            const std::vector<u8> quals(read.size(), 30);
            sum += pairHmmLogLikelihood(read, quals, hap)
                       .log10_likelihood;
        }
        if (sum > best_sum) {
            best_sum = sum;
            best_hap = hap;
        }
    }
    EXPECT_EQ(best_hap, alt_codes);
}

TEST(Integration, AbeaPrefersTrueReferenceOverMutated)
{
    Rng rng(37);
    GenomeParams gp;
    gp.length = 20'000;
    gp.seed = 38;
    const Genome genome = generateGenome(gp);
    const PoreModel pore(6, 39);

    const std::string segment = genome.seq.substr(3000, 800);
    SignalParams sp;
    sp.seed = 40;
    const auto sim = simulateSignal(pore, segment, sp);
    const auto events = detectEvents(sim.samples);

    std::string mutated = segment;
    for (auto& c : mutated) {
        if (rng.chance(0.10)) c = "ACGT"[rng.below(4)];
    }

    const auto true_result = alignEvents(events, pore, segment);
    const auto mut_result = alignEvents(events, pore, mutated);
    ASSERT_TRUE(true_result.valid);
    ASSERT_TRUE(mut_result.valid);
    EXPECT_GT(true_result.score, mut_result.score + 50.0f);
}

TEST(Integration, PrefetchCountingIsBitIdentical)
{
    GenomeParams gp;
    gp.length = 30'000;
    gp.seed = 41;
    const Genome genome = generateGenome(gp);
    LongReadParams lp;
    lp.coverage = 4.0;
    lp.seed = 42;
    std::vector<std::vector<u8>> reads;
    for (const auto& read : simulateLongReads(genome.seq, lp)) {
        reads.push_back(encodeDna(read.record.seq));
    }

    KmerCounter base(20);
    KmerCounter pref(20);
    NullProbe probe;
    const auto a = countKmers(
        std::span<const std::vector<u8>>(reads), 17, base, probe);
    const auto b = countKmersPrefetch(
        std::span<const std::vector<u8>>(reads), 17, pref, probe, 8);
    EXPECT_EQ(a.total_kmers, b.total_kmers);
    EXPECT_EQ(a.distinct_kmers, b.distinct_kmers);
    base.forEachEntry([&](u64 kmer, u16 count) {
        ASSERT_EQ(pref.count(kmer), count);
    });
}

TEST(Integration, HetVariantYieldsTwoDbgHaplotypes)
{
    Rng rng(43);
    GenomeParams gp;
    gp.length = 5'000;
    gp.seed = 44;
    const Genome genome = generateGenome(gp);
    const std::string ref_window = genome.seq.substr(1000, 350);
    std::string alt_window = ref_window;
    alt_window[170] = alt_window[170] == 'A' ? 'T' : 'A';

    AssemblyRegion region;
    region.reference = encodeDna(ref_window);
    for (int i = 0; i < 40; ++i) {
        const std::string& source =
            i % 2 ? ref_window : alt_window; // heterozygous 50/50
        const u64 start = rng.below(source.size() - 140);
        region.reads.push_back(
            encodeDna(source.substr(start, 140)));
    }
    DbgStats stats;
    const auto haps = assembleRegion(region, DbgParams{}, stats);
    std::set<std::vector<u8>> hap_set(haps.begin(), haps.end());
    EXPECT_TRUE(hap_set.count(encodeDna(ref_window)));
    EXPECT_TRUE(hap_set.count(encodeDna(alt_window)));
}

} // namespace
} // namespace gb
