/**
 * @file
 * Tests for the partial-order alignment graph and consensus.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "io/dna.h"
#include "poa/poa.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace gb {
namespace {

std::string
randomDna(Rng& rng, u64 len)
{
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
}

/** Corrupt a sequence with the given substitution/indel rates. */
std::string
corrupt(Rng& rng, const std::string& s, double sub, double ins,
        double del)
{
    std::string out;
    for (char c : s) {
        if (rng.chance(del)) continue;
        if (rng.chance(ins)) out += "ACGT"[rng.below(4)];
        out += rng.chance(sub) ? "ACGT"[rng.below(4)] : c;
    }
    if (out.empty()) out = "A";
    return out;
}

TEST(Poa, SingleSequenceConsensusIsIdentity)
{
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTTGCA");
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.consensus(), codes);
    EXPECT_EQ(graph.numNodes(), 8u);
    EXPECT_EQ(graph.numEdges(), 7u);
}

TEST(Poa, IdenticalSequencesDoNotGrowGraph)
{
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTTGCAACGT");
    for (int i = 0; i < 5; ++i) {
        graph.addSequence(std::span<const u8>(codes), probe);
    }
    EXPECT_EQ(graph.numNodes(), codes.size());
    EXPECT_EQ(graph.consensus(), codes);
}

TEST(Poa, MajorityVoteOnSubstitution)
{
    PoaGraph graph;
    NullProbe probe;
    const auto truth = encodeDna("ACGTACGTACGT");
    const auto variant = encodeDna("ACGTAGGTACGT"); // C->G at pos 5
    // 3 true reads vs 2 variant reads: consensus = truth.
    for (int i = 0; i < 3; ++i) {
        graph.addSequence(std::span<const u8>(truth), probe);
    }
    for (int i = 0; i < 2; ++i) {
        graph.addSequence(std::span<const u8>(variant), probe);
    }
    EXPECT_EQ(graph.consensus(), truth);
}

TEST(Poa, MajorityVoteFlipsWithSupport)
{
    PoaGraph graph;
    NullProbe probe;
    const auto a = encodeDna("ACGTACGTACGT");
    const auto b = encodeDna("ACGTAGGTACGT");
    for (int i = 0; i < 2; ++i) {
        graph.addSequence(std::span<const u8>(a), probe);
    }
    for (int i = 0; i < 4; ++i) {
        graph.addSequence(std::span<const u8>(b), probe);
    }
    EXPECT_EQ(graph.consensus(), b);
}

TEST(Poa, InsertionCreatesBranchButConsensusStable)
{
    PoaGraph graph;
    NullProbe probe;
    const auto truth = encodeDna("ACGTACGTACGTACGT");
    const auto with_ins = encodeDna("ACGTACGTTTACGTACGT");
    for (int i = 0; i < 4; ++i) {
        graph.addSequence(std::span<const u8>(truth), probe);
    }
    graph.addSequence(std::span<const u8>(with_ins), probe);
    EXPECT_EQ(graph.consensus(), truth);
}

TEST(Poa, PolishesNoisyReadsBackToTruth)
{
    // The Racon use case: ~10 noisy copies recover the true window.
    Rng rng(81);
    const std::string truth = randomDna(rng, 200);
    PoaTask task;
    for (int i = 0; i < 12; ++i) {
        task.reads.push_back(
            encodeDna(corrupt(rng, truth, 0.03, 0.03, 0.03)));
    }
    const auto consensus = poaConsensus(task);
    const std::string decoded = decodeDna(consensus);

    // Consensus should be much closer to the truth than any single
    // read; demand high identity via a quick banded alignment proxy:
    // count exact matching prefix-extension identity.
    ASSERT_GE(decoded.size(), 180u);
    ASSERT_LE(decoded.size(), 220u);
    u64 matches = 0;
    const size_t len = std::min(decoded.size(), truth.size());
    for (size_t i = 0; i < len; ++i) {
        matches += decoded[i] == truth[i];
    }
    // Identical length alignment is too strict with indels; use the
    // weaker but indicative bound of >=70 % positional identity plus
    // a k-mer containment check.
    u64 shared_kmers = 0;
    const u32 k = 15;
    for (size_t i = 0; i + k <= truth.size(); i += k) {
        if (decoded.find(truth.substr(i, k)) != std::string::npos) {
            ++shared_kmers;
        }
    }
    EXPECT_GE(shared_kmers, 10u) << "consensus diverged from truth";
}

TEST(Poa, MeanInDegreeGrowsWithDisagreement)
{
    Rng rng(82);
    const std::string truth = randomDna(rng, 150);

    PoaGraph clean;
    PoaGraph noisy;
    NullProbe probe;
    for (int i = 0; i < 8; ++i) {
        const auto exact = encodeDna(truth);
        clean.addSequence(std::span<const u8>(exact), probe);
        const auto bad =
            encodeDna(corrupt(rng, truth, 0.08, 0.05, 0.05));
        noisy.addSequence(std::span<const u8>(bad), probe);
    }
    EXPECT_GT(noisy.numNodes(), clean.numNodes());
}

TEST(Poa, CellUpdateAccountingMatchesComplexity)
{
    // cell updates for the second identical sequence = n * |V| (chain
    // graph, n_p = 1).
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTACGTAC");
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.cellUpdates(), 0u);
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.cellUpdates(), 10u * 10u);
}

TEST(Poa, EdgeWeightsBiasConsensus)
{
    // A single high-weight read (e.g. high base quality in Racon)
    // outvotes two weight-1 reads.
    PoaGraph graph;
    NullProbe probe;
    const auto a = encodeDna("ACGTACGTACGT");
    const auto b = encodeDna("ACGTATGTACGT"); // C->T at pos 5
    graph.addSequence(std::span<const u8>(a), probe, 1);
    graph.addSequence(std::span<const u8>(a), probe, 1);
    graph.addSequence(std::span<const u8>(b), probe, 5);
    EXPECT_EQ(graph.consensus(), b);
}

TEST(Poa, EmptySequenceRejected)
{
    PoaGraph graph;
    NullProbe probe;
    const std::vector<u8> empty;
    EXPECT_THROW(graph.addSequence(std::span<const u8>(empty), probe),
                 InputError);
}

TEST(Poa, ConsensusOfEmptyGraphIsEmpty)
{
    PoaGraph graph;
    EXPECT_TRUE(graph.consensus().empty());
}

TEST(Poa, DuplicateEdgesAccumulateWeightNotCount)
{
    // addEdge keeps its linear duplicate scan: re-adding a sequence
    // must bump edge weights, never edge counts.
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTTGCA");
    graph.addSequence(std::span<const u8>(codes), probe);
    const u64 nodes_once = graph.numNodes();
    const u64 edges_once = graph.numEdges();
    EXPECT_EQ(edges_once, codes.size() - 1);
    for (int i = 0; i < 4; ++i) {
        graph.addSequence(std::span<const u8>(codes), probe);
    }
    EXPECT_EQ(graph.numNodes(), nodes_once);
    EXPECT_EQ(graph.numEdges(), edges_once);
    // The accumulated weight must outvote a lighter variant.
    const auto variant = encodeDna("ACGTCGCA");
    for (int i = 0; i < 3; ++i) {
        graph.addSequence(std::span<const u8>(variant), probe);
    }
    EXPECT_EQ(graph.consensus(), codes);
}

TEST(Poa, MeanInDegreeIsEdgesOverNodes)
{
    Rng rng(83);
    const std::string truth = randomDna(rng, 120);
    PoaGraph graph;
    NullProbe probe;
    for (int i = 0; i < 6; ++i) {
        const auto read =
            encodeDna(corrupt(rng, truth, 0.05, 0.04, 0.04));
        graph.addSequence(std::span<const u8>(read), probe);
        ASSERT_GT(graph.numNodes(), 0u);
        EXPECT_DOUBLE_EQ(graph.meanInDegree(),
                         static_cast<double>(graph.numEdges()) /
                             static_cast<double>(graph.numNodes()));
    }
}

// ---- poa engine: scalar/SIMD equivalence ----------------------------

/** Restores the process-global dispatch level on scope exit. */
struct LevelGuard
{
    ~LevelGuard() { simd::resetSimdLevel(); }
};

/** Levels this host can actually execute (always includes scalar). */
std::vector<simd::SimdLevel>
testableLevels()
{
    std::vector<simd::SimdLevel> levels{simd::SimdLevel::kScalar};
    const simd::SimdLevel best = simd::detectSimdLevel();
    if (best >= simd::SimdLevel::kSse4) {
        levels.push_back(simd::SimdLevel::kSse4);
    }
    if (best >= simd::SimdLevel::kAvx2) {
        levels.push_back(simd::SimdLevel::kAvx2);
    }
    return levels;
}

TEST(PoaEngine, RandomizedGraphsMatchScalarAtEveryLevel)
{
    // The simd engine must build bit-identical graphs: same node and
    // edge counts after every addSequence, same consensus, same cell
    // accounting. Reads span the interesting regimes (clean repeats,
    // heavy noise, ambiguous bases, single-base reads).
    LevelGuard guard;
    for (const simd::SimdLevel level : testableLevels()) {
        simd::setSimdLevel(level);
        Rng rng(84); // same cases at every level
        for (int rep = 0; rep < 350; ++rep) {
            PoaParams params;
            if (rng.chance(0.2)) params.mismatch = -2;
            if (rng.chance(0.2)) params.gap = -8;
            PoaGraph scalar_graph(params);
            PoaGraph simd_graph(params);
            simd_graph.setEngine(PoaEngine::kSimd);
            EXPECT_EQ(scalar_graph.engine(), PoaEngine::kScalar);

            const u64 truth_len = 1 + rng.below(60);
            std::string truth = randomDna(rng, truth_len);
            if (rng.chance(0.1)) truth[0] = 'N';
            const u64 depth = 2 + rng.below(4);
            NullProbe probe;
            for (u64 d = 0; d < depth; ++d) {
                std::string read =
                    corrupt(rng, truth, 0.08, 0.05, 0.05);
                if (rng.chance(0.1)) read = "A";
                const auto codes = encodeDna(read);
                scalar_graph.addSequence(std::span<const u8>(codes),
                                         probe);
                simd_graph.addSequence(std::span<const u8>(codes),
                                       probe);
                ASSERT_EQ(simd_graph.numNodes(),
                          scalar_graph.numNodes())
                    << "level=" << simd::simdLevelName(level)
                    << " rep=" << rep << " read=" << d;
                ASSERT_EQ(simd_graph.numEdges(),
                          scalar_graph.numEdges())
                    << "level=" << simd::simdLevelName(level)
                    << " rep=" << rep << " read=" << d;
            }
            EXPECT_EQ(simd_graph.consensus(),
                      scalar_graph.consensus())
                << "level=" << simd::simdLevelName(level)
                << " rep=" << rep;
            EXPECT_EQ(simd_graph.cellUpdates(),
                      scalar_graph.cellUpdates());
            EXPECT_DOUBLE_EQ(simd_graph.meanInDegree(),
                             scalar_graph.meanInDegree());
        }
    }
}

TEST(PoaEngine, ConsensusHelperMatchesScalarHelper)
{
    LevelGuard guard;
    Rng rng(85);
    const std::string truth = randomDna(rng, 180);
    PoaTask task;
    for (int i = 0; i < 10; ++i) {
        task.reads.push_back(
            encodeDna(corrupt(rng, truth, 0.04, 0.03, 0.03)));
    }
    u64 cells_scalar = 0;
    NullProbe probe;
    const auto scalar =
        poaConsensus(task, PoaParams{}, probe, &cells_scalar);
    for (const simd::SimdLevel level : testableLevels()) {
        simd::setSimdLevel(level);
        u64 cells_simd = 0;
        EXPECT_EQ(poaConsensusSimd(task, PoaParams{}, &cells_simd),
                  scalar)
            << "level=" << simd::simdLevelName(level);
        EXPECT_EQ(cells_simd, cells_scalar);
    }
}

TEST(PoaEngine, WideInDegreeExercisesPackedOverflow)
{
    // Force a node with more than 63 predecessors so the packed
    // traceback's 6-bit field saturates and the candidate rescan has
    // to resolve it: seed the graph with a G-free backbone ending in
    // G, then add every truncated prefix + "G". Each truncation's G
    // aligns to the shared G sink across a tail of deletions, so the
    // sink gains one distinct predecessor (the truncation point) per
    // read. Scalar and simd graphs must stay identical and the
    // traceback must never lose a predecessor.
    LevelGuard guard;
    Rng backbone_rng(86);
    std::string backbone;
    for (int i = 0; i < 140; ++i) {
        backbone += "ACT"[backbone_rng.below(3)]; // no G: unique sink
    }
    for (const simd::SimdLevel level : testableLevels()) {
        simd::setSimdLevel(level);
        PoaGraph scalar_graph;
        PoaGraph simd_graph;
        simd_graph.setEngine(PoaEngine::kSimd);
        NullProbe probe;
        for (size_t len = backbone.size(); len >= 1; --len) {
            const auto codes =
                encodeDna(backbone.substr(0, len) + "G");
            scalar_graph.addSequence(std::span<const u8>(codes),
                                     probe);
            simd_graph.addSequence(std::span<const u8>(codes),
                                   probe);
            ASSERT_EQ(simd_graph.numNodes(),
                      scalar_graph.numNodes())
                << "level=" << simd::simdLevelName(level)
                << " len=" << len;
            ASSERT_EQ(simd_graph.numEdges(),
                      scalar_graph.numEdges());
        }
        // The 6-bit pred-index field saturates at 63; the test only
        // proves anything if some node is genuinely wider than that.
        EXPECT_GT(scalar_graph.maxInDegree(), 63u);
        EXPECT_EQ(simd_graph.maxInDegree(),
                  scalar_graph.maxInDegree());
        EXPECT_EQ(simd_graph.consensus(), scalar_graph.consensus());
    }
}

} // namespace
} // namespace gb
