/**
 * @file
 * Tests for the partial-order alignment graph and consensus.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/dna.h"
#include "poa/poa.h"
#include "util/rng.h"

namespace gb {
namespace {

std::string
randomDna(Rng& rng, u64 len)
{
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
}

/** Corrupt a sequence with the given substitution/indel rates. */
std::string
corrupt(Rng& rng, const std::string& s, double sub, double ins,
        double del)
{
    std::string out;
    for (char c : s) {
        if (rng.chance(del)) continue;
        if (rng.chance(ins)) out += "ACGT"[rng.below(4)];
        out += rng.chance(sub) ? "ACGT"[rng.below(4)] : c;
    }
    if (out.empty()) out = "A";
    return out;
}

TEST(Poa, SingleSequenceConsensusIsIdentity)
{
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTTGCA");
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.consensus(), codes);
    EXPECT_EQ(graph.numNodes(), 8u);
    EXPECT_EQ(graph.numEdges(), 7u);
}

TEST(Poa, IdenticalSequencesDoNotGrowGraph)
{
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTTGCAACGT");
    for (int i = 0; i < 5; ++i) {
        graph.addSequence(std::span<const u8>(codes), probe);
    }
    EXPECT_EQ(graph.numNodes(), codes.size());
    EXPECT_EQ(graph.consensus(), codes);
}

TEST(Poa, MajorityVoteOnSubstitution)
{
    PoaGraph graph;
    NullProbe probe;
    const auto truth = encodeDna("ACGTACGTACGT");
    const auto variant = encodeDna("ACGTAGGTACGT"); // C->G at pos 5
    // 3 true reads vs 2 variant reads: consensus = truth.
    for (int i = 0; i < 3; ++i) {
        graph.addSequence(std::span<const u8>(truth), probe);
    }
    for (int i = 0; i < 2; ++i) {
        graph.addSequence(std::span<const u8>(variant), probe);
    }
    EXPECT_EQ(graph.consensus(), truth);
}

TEST(Poa, MajorityVoteFlipsWithSupport)
{
    PoaGraph graph;
    NullProbe probe;
    const auto a = encodeDna("ACGTACGTACGT");
    const auto b = encodeDna("ACGTAGGTACGT");
    for (int i = 0; i < 2; ++i) {
        graph.addSequence(std::span<const u8>(a), probe);
    }
    for (int i = 0; i < 4; ++i) {
        graph.addSequence(std::span<const u8>(b), probe);
    }
    EXPECT_EQ(graph.consensus(), b);
}

TEST(Poa, InsertionCreatesBranchButConsensusStable)
{
    PoaGraph graph;
    NullProbe probe;
    const auto truth = encodeDna("ACGTACGTACGTACGT");
    const auto with_ins = encodeDna("ACGTACGTTTACGTACGT");
    for (int i = 0; i < 4; ++i) {
        graph.addSequence(std::span<const u8>(truth), probe);
    }
    graph.addSequence(std::span<const u8>(with_ins), probe);
    EXPECT_EQ(graph.consensus(), truth);
}

TEST(Poa, PolishesNoisyReadsBackToTruth)
{
    // The Racon use case: ~10 noisy copies recover the true window.
    Rng rng(81);
    const std::string truth = randomDna(rng, 200);
    PoaTask task;
    for (int i = 0; i < 12; ++i) {
        task.reads.push_back(
            encodeDna(corrupt(rng, truth, 0.03, 0.03, 0.03)));
    }
    const auto consensus = poaConsensus(task);
    const std::string decoded = decodeDna(consensus);

    // Consensus should be much closer to the truth than any single
    // read; demand high identity via a quick banded alignment proxy:
    // count exact matching prefix-extension identity.
    ASSERT_GE(decoded.size(), 180u);
    ASSERT_LE(decoded.size(), 220u);
    u64 matches = 0;
    const size_t len = std::min(decoded.size(), truth.size());
    for (size_t i = 0; i < len; ++i) {
        matches += decoded[i] == truth[i];
    }
    // Identical length alignment is too strict with indels; use the
    // weaker but indicative bound of >=70 % positional identity plus
    // a k-mer containment check.
    u64 shared_kmers = 0;
    const u32 k = 15;
    for (size_t i = 0; i + k <= truth.size(); i += k) {
        if (decoded.find(truth.substr(i, k)) != std::string::npos) {
            ++shared_kmers;
        }
    }
    EXPECT_GE(shared_kmers, 10u) << "consensus diverged from truth";
}

TEST(Poa, MeanInDegreeGrowsWithDisagreement)
{
    Rng rng(82);
    const std::string truth = randomDna(rng, 150);

    PoaGraph clean;
    PoaGraph noisy;
    NullProbe probe;
    for (int i = 0; i < 8; ++i) {
        const auto exact = encodeDna(truth);
        clean.addSequence(std::span<const u8>(exact), probe);
        const auto bad =
            encodeDna(corrupt(rng, truth, 0.08, 0.05, 0.05));
        noisy.addSequence(std::span<const u8>(bad), probe);
    }
    EXPECT_GT(noisy.numNodes(), clean.numNodes());
}

TEST(Poa, CellUpdateAccountingMatchesComplexity)
{
    // cell updates for the second identical sequence = n * |V| (chain
    // graph, n_p = 1).
    PoaGraph graph;
    NullProbe probe;
    const auto codes = encodeDna("ACGTACGTAC");
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.cellUpdates(), 0u);
    graph.addSequence(std::span<const u8>(codes), probe);
    EXPECT_EQ(graph.cellUpdates(), 10u * 10u);
}

TEST(Poa, EdgeWeightsBiasConsensus)
{
    // A single high-weight read (e.g. high base quality in Racon)
    // outvotes two weight-1 reads.
    PoaGraph graph;
    NullProbe probe;
    const auto a = encodeDna("ACGTACGTACGT");
    const auto b = encodeDna("ACGTATGTACGT"); // C->T at pos 5
    graph.addSequence(std::span<const u8>(a), probe, 1);
    graph.addSequence(std::span<const u8>(a), probe, 1);
    graph.addSequence(std::span<const u8>(b), probe, 5);
    EXPECT_EQ(graph.consensus(), b);
}

TEST(Poa, EmptySequenceRejected)
{
    PoaGraph graph;
    NullProbe probe;
    const std::vector<u8> empty;
    EXPECT_THROW(graph.addSequence(std::span<const u8>(empty), probe),
                 InputError);
}

TEST(Poa, ConsensusOfEmptyGraphIsEmpty)
{
    PoaGraph graph;
    EXPECT_TRUE(graph.consensus().empty());
}

} // namespace
} // namespace gb
