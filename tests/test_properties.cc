/**
 * @file
 * Parameterized property sweeps across modules: POA consensus vs
 * coverage depth, batch-SW invariance across batch composition,
 * pairHMM likelihood normalization, cache-model invariants across
 * geometries, chaining optimality on structured inputs.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "arch/cache_sim.h"
#include "chain/chain.h"
#include "io/dna.h"
#include "phmm/pairhmm.h"
#include "poa/poa.h"
#include "util/rng.h"

namespace gb {
namespace {

std::string
randomDna(Rng& rng, u64 len)
{
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng.below(4)];
    return s;
}

std::string
corrupt(Rng& rng, const std::string& s, double rate)
{
    std::string out;
    for (char c : s) {
        if (rng.chance(rate / 3)) continue;
        if (rng.chance(rate / 3)) out += "ACGT"[rng.below(4)];
        out += rng.chance(rate / 3) ? "ACGT"[rng.below(4)] : c;
    }
    if (out.empty()) out = "A";
    return out;
}

// --- POA: consensus accuracy improves with coverage ------------------

class PoaDepthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PoaDepthSweep, ConsensusSharedKmersGrowWithDepth)
{
    const int depth = GetParam();
    Rng rng(700 + depth);
    const std::string truth = randomDna(rng, 160);

    PoaTask task;
    for (int i = 0; i < depth; ++i) {
        task.reads.push_back(encodeDna(corrupt(rng, truth, 0.12)));
    }
    const std::string consensus = decodeDna(poaConsensus(task));

    u64 shared = 0;
    u64 total = 0;
    for (size_t i = 0; i + 13 <= truth.size(); ++i) {
        ++total;
        shared += consensus.find(truth.substr(i, 13)) !=
                  std::string::npos;
    }
    const double recall =
        static_cast<double>(shared) / static_cast<double>(total);
    // Low depth cannot correct 12 % noise; >= 8 reads should.
    if (depth >= 8) {
        EXPECT_GT(recall, 0.8) << "depth " << depth;
    }
    EXPECT_GE(recall, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Depths, PoaDepthSweep,
                         ::testing::Values(2, 4, 8, 12, 16));

// --- Batch SW: results invariant to batch composition ----------------

class BatchCompositionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchCompositionSweep, ScoresIndependentOfNeighbours)
{
    // The lockstep aligner must give each pair the same score no
    // matter which 15 other pairs share its batch.
    Rng rng(800 + GetParam());
    std::vector<std::vector<u8>> qs;
    std::vector<std::vector<u8>> ts;
    for (int i = 0; i < 48; ++i) {
        std::vector<u8> q(30 + rng.below(120));
        for (auto& c : q) c = static_cast<u8>(rng.below(4));
        std::vector<u8> t = q;
        for (auto& c : t) {
            if (rng.chance(0.15)) c = static_cast<u8>(rng.below(4));
        }
        qs.push_back(std::move(q));
        ts.push_back(std::move(t));
    }
    SwParams params;
    params.band_width = 30;
    const BatchSwAligner aligner(params);
    NullProbe probe;

    // Baseline: natural order.
    std::vector<SwPair> pairs;
    for (size_t i = 0; i < qs.size(); ++i) {
        pairs.push_back({qs[i], ts[i]});
    }
    const auto base = aligner.align(pairs, probe);

    // Shuffled order.
    std::vector<u32> perm(qs.size());
    std::iota(perm.begin(), perm.end(), 0u);
    for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    std::vector<SwPair> shuffled;
    for (u32 i : perm) shuffled.push_back({qs[i], ts[i]});
    const auto shuf = aligner.align(shuffled, probe);
    for (size_t i = 0; i < perm.size(); ++i) {
        EXPECT_EQ(shuf[i].score, base[perm[i]].score);
        EXPECT_EQ(shuf[i].cell_updates, base[perm[i]].cell_updates);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchCompositionSweep,
                         ::testing::Range(1, 6));

// --- pairHMM: likelihoods over all reads of length L sum to ~1 -------

TEST(PairHmmProperty, SumOverAllReadsIsBounded)
{
    // Sum of P(read | hap) over all 4^L reads of length L equals the
    // total probability of emitting *some* read of length L, which is
    // <= 1. Enumerable at L = 4.
    const auto hap = encodeDna("ACGTTGCA");
    const u32 len = 4;
    const std::vector<u8> quals(len, 30);
    long double total = 0.0L;
    for (u32 mask = 0; mask < (1u << (2 * len)); ++mask) {
        std::vector<u8> read(len);
        for (u32 i = 0; i < len; ++i) {
            read[i] = static_cast<u8>((mask >> (2 * i)) & 3);
        }
        const auto r = pairHmmLogLikelihood(read, quals, hap);
        total += std::pow(10.0L,
                          static_cast<long double>(
                              r.log10_likelihood));
    }
    EXPECT_LE(static_cast<double>(total), 1.0 + 1e-6);
    EXPECT_GT(static_cast<double>(total), 0.3); // most mass captured
}

// --- Cache model: miss rate monotone in capacity ----------------------

class CacheCapacitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheCapacitySweep, BiggerL1NeverMissesMore)
{
    Rng rng(900 + GetParam());
    // One shared random-ish trace with reuse.
    std::vector<u64> trace;
    for (int i = 0; i < 60'000; ++i) {
        trace.push_back(rng.chance(0.6) ? rng.below(8192) * 8
                                        : rng.below(1u << 22));
    }
    double prev_miss = 1.1;
    for (u64 kb : {8ull, 16ull, 32ull, 64ull, 128ull}) {
        CacheHierarchyConfig config;
        config.l1 = {kb * 1024, 8, 64};
        CacheSim sim(config);
        for (u64 addr : trace) sim.access(addr, 4, false);
        const double miss = sim.l1Stats().missRate();
        EXPECT_LE(miss, prev_miss + 1e-9) << kb << " KB";
        prev_miss = miss;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheCapacitySweep,
                         ::testing::Range(1, 5));

// --- Chaining: on a clean diagonal, DP reaches the optimum ------------

class ChainOptimalitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ChainOptimalitySweep, CleanDiagonalIsFullyChained)
{
    Rng rng(950 + GetParam());
    // Anchors on a diagonal with small jitter, spacing < max_dist.
    std::vector<Anchor> anchors;
    u32 t = 100;
    for (int i = 0; i < 120; ++i) {
        const u32 step = 20 + static_cast<u32>(rng.below(60));
        t += step;
        const u32 jitter = static_cast<u32>(rng.below(5));
        anchors.push_back({t, t - 100 + jitter, 15});
    }
    std::sort(anchors.begin(), anchors.end(),
              [](const Anchor& a, const Anchor& b) {
                  return a.tpos < b.tpos ||
                         (a.tpos == b.tpos && a.qpos < b.qpos);
              });
    const auto chains = chainAnchors(anchors);
    ASSERT_FALSE(chains.empty());
    // Nearly all anchors join the single chain.
    EXPECT_GE(chains[0].anchors.size(), anchors.size() - 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainOptimalitySweep,
                         ::testing::Range(1, 6));

} // namespace
} // namespace gb
