/**
 * @file
 * Tests for gb::serve: job parsing/validation, admission control,
 * FIFO + big-job-aging dispatch order, cancellation semantics, kernel
 * error isolation, single-flight prepare through the artifact cache,
 * and drain/shutdown behaviour.
 *
 * The scheduler is driven with fake kernels (Config::kernel_factory)
 * whose run() can be gated on a condition variable, so every ordering
 * assertion below is deterministic: a test only releases a gate once
 * the queue is in the exact state it wants to observe.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/bounded_queue.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "store/cache.h"
#include "store/container.h"

namespace gb {
namespace {

using serve::JobHandle;
using serve::JobSpec;
using serve::JobStatus;
using serve::Scheduler;

// ---------------------------------------------------------------------
// Job parsing

TEST(ServeJob, ParseLineFull)
{
    const JobSpec spec = serve::parseJobLine(
        "fmi size=large engine=simd threads=4 repeats=7");
    EXPECT_EQ(spec.kernel, "fmi");
    EXPECT_EQ(spec.size, DatasetSize::kLarge);
    EXPECT_EQ(spec.engine, Engine::kSimd);
    EXPECT_EQ(spec.threads, 4u);
    EXPECT_EQ(spec.repeats, 7u);
}

TEST(ServeJob, ParseLineDefaults)
{
    const JobSpec spec = serve::parseJobLine("kmer-cnt");
    EXPECT_EQ(spec.kernel, "kmer-cnt");
    EXPECT_EQ(spec.size, DatasetSize::kTiny);
    EXPECT_EQ(spec.engine, Engine::kScalar);
    EXPECT_EQ(spec.threads, 1u);
    EXPECT_EQ(spec.repeats, 1u);
    EXPECT_EQ(spec.schedule, SchedulePolicy::kDynamic);
    // schedule_set distinguishes "line said dynamic" from "defaulted",
    // so a serve-level --schedule=steal can fill in the latter only.
    EXPECT_FALSE(spec.schedule_set);
}

TEST(ServeJob, ParseLineSchedule)
{
    const JobSpec steal =
        serve::parseJobLine("bsw schedule=steal threads=2");
    EXPECT_EQ(steal.schedule, SchedulePolicy::kSteal);
    EXPECT_TRUE(steal.schedule_set);
    const JobSpec dynamic = serve::parseJobLine("bsw schedule=dynamic");
    EXPECT_EQ(dynamic.schedule, SchedulePolicy::kDynamic);
    EXPECT_TRUE(dynamic.schedule_set);
    EXPECT_THROW(serve::parseJobLine("bsw schedule=guided"),
                 InputError);
    EXPECT_THROW(
        serve::parseJobLine("bsw schedule=steal schedule=steal"),
        InputError);
}

TEST(ServeJob, DescribeIncludesSchedule)
{
    JobSpec spec = serve::parseJobLine(
        "fmi size=tiny threads=2 repeats=3");
    EXPECT_EQ(spec.describe(),
              "fmi size=tiny engine=scalar schedule=dynamic "
              "priority=normal t=2 x3");
    spec.schedule = SchedulePolicy::kSteal;
    spec.priority = serve::Priority::kBatch;
    EXPECT_EQ(spec.describe(),
              "fmi size=tiny engine=scalar schedule=steal "
              "priority=batch t=2 x3");
}

TEST(ServeJob, ParseLinePriority)
{
    EXPECT_EQ(serve::parseJobLine("fmi").priority,
              serve::Priority::kNormal);
    EXPECT_EQ(serve::parseJobLine("fmi priority=high").priority,
              serve::Priority::kHigh);
    EXPECT_EQ(serve::parseJobLine("fmi priority=normal").priority,
              serve::Priority::kNormal);
    EXPECT_EQ(serve::parseJobLine("fmi priority=batch").priority,
              serve::Priority::kBatch);
    EXPECT_THROW(serve::parseJobLine("fmi priority=urgent"),
                 InputError);
    EXPECT_THROW(
        serve::parseJobLine("fmi priority=high priority=high"),
        InputError);
}

TEST(ServeJob, PriorityNames)
{
    EXPECT_STREQ(serve::priorityName(serve::Priority::kHigh), "high");
    EXPECT_STREQ(serve::priorityName(serve::Priority::kNormal),
                 "normal");
    EXPECT_STREQ(serve::priorityName(serve::Priority::kBatch),
                 "batch");
    EXPECT_THROW(serve::parsePriority(""), InputError);
}

TEST(ServeJob, ParseLineErrors)
{
    EXPECT_THROW(serve::parseJobLine(""), InputError);
    EXPECT_THROW(serve::parseJobLine("size=tiny"), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi bsw"), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi size=tiny size=small"),
                 InputError);
    EXPECT_THROW(serve::parseJobLine("fmi colour=blue"), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi threads=zero"), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi threads=0"), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi threads="), InputError);
    EXPECT_THROW(serve::parseJobLine("fmi size=medium"), InputError);
}

TEST(ServeJob, ParseFile)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gb_serve_jobs_test.txt";
    {
        std::ofstream out(path);
        out << "# genomics job list\n"
               "\n"
               "fmi size=tiny threads=2   # trailing comment\n"
               "bsw engine=simd\n";
    }
    const auto specs = serve::parseJobFile(path.string());
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].kernel, "fmi");
    EXPECT_EQ(specs[0].threads, 2u);
    EXPECT_EQ(specs[1].kernel, "bsw");
    EXPECT_EQ(specs[1].engine, Engine::kSimd);
    std::filesystem::remove(path);
}

TEST(ServeJob, ParseFileReportsLineNumber)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gb_serve_jobs_bad.txt";
    {
        std::ofstream out(path);
        out << "fmi\n\nfmi bogus=1\n";
    }
    try {
        serve::parseJobFile(path.string());
        FAIL() << "expected InputError";
    } catch (const InputError& e) {
        EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(ServeJob, ParseFileErrors)
{
    EXPECT_THROW(serve::parseJobFile("/nonexistent/jobs.txt"),
                 InputError);
    const auto path = std::filesystem::temp_directory_path() /
                      "gb_serve_jobs_empty.txt";
    { std::ofstream out(path); out << "# only comments\n"; }
    EXPECT_THROW(serve::parseJobFile(path.string()), InputError);
    std::filesystem::remove(path);
}

TEST(ServeJob, ValidateSpec)
{
    const std::vector<std::string> known = {"alpha", "beta"};
    JobSpec spec;
    spec.kernel = "alpha";
    EXPECT_NO_THROW(serve::validateSpec(spec, known));
    spec.kernel = "gamma";
    EXPECT_THROW(serve::validateSpec(spec, known), InputError);
    spec.kernel = "alpha";
    spec.threads = 0;
    EXPECT_THROW(serve::validateSpec(spec, known), InputError);
    spec.threads = 1;
    spec.repeats = 0;
    EXPECT_THROW(serve::validateSpec(spec, known), InputError);
}

// ---------------------------------------------------------------------
// Fake kernels

/**
 * Shared strings/flags driving the fake kernels. A kernel whose name
 * is gated blocks inside run() until release(); every run() start is
 * appended to `started` so tests can assert dispatch order.
 */
struct FakeControl
{
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::string> started;
    std::set<std::string> gated;
    std::atomic<int> prepare_calls{0};

    void
    recordStart(const std::string& name)
    {
        std::unique_lock<std::mutex> lock(m);
        started.push_back(name);
        cv.notify_all();
        cv.wait(lock, [&] { return gated.count(name) == 0; });
    }

    void
    release(const std::string& name)
    {
        std::lock_guard<std::mutex> lock(m);
        gated.erase(name);
        cv.notify_all();
    }

    /** Block until `name` has entered run(). */
    void
    awaitStart(const std::string& name)
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] {
            return std::find(started.begin(), started.end(), name) !=
                   started.end();
        });
    }

    std::vector<std::string>
    startOrder()
    {
        std::lock_guard<std::mutex> lock(m);
        return started;
    }
};

class FakeKernel : public Benchmark
{
  public:
    /** throw_on_run: 1-based run() call that throws; 0 = never. */
    FakeKernel(std::string name, FakeControl* control,
               unsigned throw_on_run = 0)
        : control_(control), throw_on_run_(throw_on_run)
    {
        info_.name = std::move(name);
    }

    const Info& info() const override { return info_; }

    void prepare(DatasetSize) override { ++control_->prepare_calls; }

    u64
    run(ThreadPool&) override
    {
        control_->recordStart(info_.name);
        if (throw_on_run_ && ++runs_ >= throw_on_run_) {
            throw InputError("kernel exploded: " + info_.name);
        }
        return 1;
    }

    u64 characterize(CharProbe&) override { return 0; }
    std::vector<u64> taskWork() override { return {1}; }

  private:
    Info info_;
    FakeControl* control_;
    unsigned throw_on_run_;
    unsigned runs_ = 0;
};

/** Scheduler config whose registry is the given fake kernel names.
 *  Names starting with "boom" throw on the first run() call; names
 *  starting with "late-boom" complete one repeat, then throw. */
Scheduler::Config
fakeConfig(FakeControl* control, std::vector<std::string> names,
           unsigned workers, size_t queue_depth,
           unsigned aging_limit = 4, unsigned promote_limit = 16)
{
    Scheduler::Config config;
    config.workers = workers;
    config.queue_depth = queue_depth;
    config.aging_limit = aging_limit;
    config.promote_limit = promote_limit;
    config.kernels = names;
    config.kernel_factory = [control](const std::string& name) {
        unsigned throw_on_run = 0;
        if (name.rfind("late-boom", 0) == 0) {
            throw_on_run = 2;
        } else if (name.rfind("boom", 0) == 0) {
            throw_on_run = 1;
        }
        return std::make_unique<FakeKernel>(name, control,
                                            throw_on_run);
    };
    return config;
}

JobSpec
job(const std::string& kernel, unsigned threads = 1,
    serve::Priority priority = serve::Priority::kNormal)
{
    JobSpec spec;
    spec.kernel = kernel;
    spec.threads = threads;
    spec.priority = priority;
    return spec;
}

// ---------------------------------------------------------------------
// Scheduler behaviour

TEST(ServeScheduler, RunsJobsAndReportsMetrics)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a", "b"}, 2, 8));
    auto h1 = scheduler.submit(job("a"));
    auto h2 = scheduler.submit(job("b", 2));
    h1.wait();
    h2.wait();
    EXPECT_EQ(h1.status(), JobStatus::kDone);
    EXPECT_EQ(h2.status(), JobStatus::kDone);
    EXPECT_EQ(h1.metrics().tasks, 1u);
    EXPECT_EQ(h1.metrics().pool_threads, 1u);
    EXPECT_EQ(h2.metrics().pool_threads, 2u);
    scheduler.drain();
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ServeScheduler, SubmitValidatesSpec)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a"}, 1, 4));
    EXPECT_THROW(scheduler.submit(job("unknown")), InputError);
    EXPECT_THROW(scheduler.submit(job("a", 0)), InputError);
}

TEST(ServeScheduler, AdmissionRejectsWhenFull)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate", "a"}, 1, 2));
    auto blocker = scheduler.submit(job("gate"));
    control.awaitStart("gate"); // worker busy, queue empty
    auto q1 = scheduler.submit(job("a"));
    auto q2 = scheduler.submit(job("a"));
    auto q3 = scheduler.submit(job("a")); // queue holds 2: rejected
    EXPECT_EQ(q3.status(), JobStatus::kRejected);
    EXPECT_NE(q3.error().find("queue full"), std::string::npos)
        << q3.error();
    control.release("gate");
    scheduler.drain();
    EXPECT_EQ(blocker.status(), JobStatus::kDone);
    EXPECT_EQ(q1.status(), JobStatus::kDone);
    EXPECT_EQ(q2.status(), JobStatus::kDone);
    EXPECT_EQ(q3.status(), JobStatus::kRejected);
    EXPECT_EQ(scheduler.stats().rejected, 1u);
    EXPECT_EQ(scheduler.stats().completed, 3u);
}

TEST(ServeScheduler, FifoOrder)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"j1", "j2", "j3", "j4"},
                                   1, 8));
    std::vector<JobHandle> handles;
    for (const auto* name : {"j1", "j2", "j3", "j4"}) {
        handles.push_back(scheduler.submit(job(name)));
    }
    scheduler.drain();
    EXPECT_EQ(control.startOrder(),
              (std::vector<std::string>{"j1", "j2", "j3", "j4"}));
}

TEST(ServeScheduler, SmallJobsBypassWideHeadUntilAged)
{
    FakeControl control;
    control.gated.insert("R");
    // 2 workers, aging_limit=2: R holds one worker, the wide job L
    // (threads=2) cannot fit and is bypassed by S1 and S2; its third
    // bypass is forbidden, so S3 must wait behind it even though a
    // worker is free.
    Scheduler scheduler(fakeConfig(&control,
                                   {"R", "L", "S1", "S2", "S3"}, 2, 8,
                                   /*aging_limit=*/2));
    auto r = scheduler.submit(job("R"));
    control.awaitStart("R");
    auto l = scheduler.submit(job("L", 2));
    auto s1 = scheduler.submit(job("S1"));
    auto s2 = scheduler.submit(job("S2"));
    auto s3 = scheduler.submit(job("S3"));
    s2.wait(); // both bypasses happened
    EXPECT_EQ(l.status(), JobStatus::kQueued);
    EXPECT_EQ(s3.status(), JobStatus::kQueued); // reserved for L
    control.release("R");
    scheduler.drain();
    EXPECT_EQ(control.startOrder(),
              (std::vector<std::string>{"R", "S1", "S2", "L", "S3"}));
}

TEST(ServeScheduler, CancelQueuedNotRunning)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate", "a"}, 1, 8));
    auto running = scheduler.submit(job("gate"));
    control.awaitStart("gate");
    auto queued1 = scheduler.submit(job("a"));
    auto queued2 = scheduler.submit(job("a"));
    EXPECT_FALSE(running.cancel()); // already dispatched
    EXPECT_TRUE(queued1.cancel());  // cancel mid-queue
    EXPECT_FALSE(queued1.cancel()); // already terminal
    EXPECT_EQ(queued1.status(), JobStatus::kCancelled);
    EXPECT_NE(queued1.error().find("cancelled"), std::string::npos);
    control.release("gate");
    scheduler.drain();
    EXPECT_EQ(running.status(), JobStatus::kDone);
    EXPECT_EQ(queued2.status(), JobStatus::kDone); // queue kept going
    EXPECT_EQ(scheduler.stats().cancelled, 1u);
    // The cancelled job never ran.
    const auto order = control.startOrder();
    EXPECT_EQ(order.size(), 2u);
}

TEST(ServeScheduler, KernelThrowIsIsolated)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"boom", "a"}, 1, 8));
    auto bad = scheduler.submit(job("boom"));
    auto good = scheduler.submit(job("a"));
    scheduler.drain();
    EXPECT_EQ(bad.status(), JobStatus::kFailed);
    EXPECT_NE(bad.error().find("kernel exploded"), std::string::npos)
        << bad.error();
    EXPECT_EQ(good.status(), JobStatus::kDone);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeScheduler, PriorityClassOrder)
{
    FakeControl control;
    control.gated.insert("R");
    // One worker: R occupies the budget while the other three queue,
    // then everything dispatches in strict class order regardless of
    // submission order.
    Scheduler scheduler(fakeConfig(&control, {"R", "B", "N", "H"},
                                   1, 8));
    auto r = scheduler.submit(job("R"));
    control.awaitStart("R");
    auto b = scheduler.submit(
        job("B", 1, serve::Priority::kBatch));
    auto n = scheduler.submit(
        job("N", 1, serve::Priority::kNormal));
    auto h = scheduler.submit(job("H", 1, serve::Priority::kHigh));
    control.release("R");
    scheduler.drain();
    EXPECT_EQ(control.startOrder(),
              (std::vector<std::string>{"R", "H", "N", "B"}));
    EXPECT_EQ(h.metrics().dispatch_seq, 2u);
    EXPECT_EQ(n.metrics().dispatch_seq, 3u);
    EXPECT_EQ(b.metrics().dispatch_seq, 4u);
}

TEST(ServeScheduler, BatchPromotedAfterClassBypasses)
{
    FakeControl control;
    control.gated.insert("R");
    // promote_limit=1: each high dispatch past the pending batch job
    // promotes it one class. After H1 it is normal, after H2 high —
    // and as the oldest high job it then beats H3 to the worker.
    Scheduler scheduler(fakeConfig(&control,
                                   {"R", "B", "H1", "H2", "H3"}, 1, 8,
                                   /*aging_limit=*/4,
                                   /*promote_limit=*/1));
    auto r = scheduler.submit(job("R"));
    control.awaitStart("R");
    auto b = scheduler.submit(
        job("B", 1, serve::Priority::kBatch));
    auto h1 = scheduler.submit(job("H1", 1, serve::Priority::kHigh));
    auto h2 = scheduler.submit(job("H2", 1, serve::Priority::kHigh));
    auto h3 = scheduler.submit(job("H3", 1, serve::Priority::kHigh));
    control.release("R");
    scheduler.drain();
    EXPECT_EQ(control.startOrder(),
              (std::vector<std::string>{"R", "H1", "H2", "B", "H3"}));
}

TEST(ServeScheduler, FailedRepeatReportsCompletedRepeats)
{
    FakeControl control;
    // "late-boom" completes its first repeat and throws on the
    // second: the metrics must describe the one completed repeat, not
    // zeros or the values of the repeat that died.
    Scheduler scheduler(fakeConfig(&control, {"late-boom"}, 1, 4));
    auto spec = job("late-boom");
    spec.repeats = 3;
    auto handle = scheduler.submit(spec);
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::kFailed);
    EXPECT_NE(handle.error().find("kernel exploded"),
              std::string::npos);
    const auto m = handle.metrics();
    EXPECT_EQ(m.repeats_completed, 1u);
    EXPECT_GT(m.best_run_seconds, 0.0);
    EXPECT_EQ(m.best_run_seconds, m.run_seconds);
    EXPECT_EQ(m.tasks, 1u);
    scheduler.drain();
}

TEST(ServeScheduler, FailedFirstRepeatReportsZeroBest)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"boom"}, 1, 4));
    auto spec = job("boom");
    spec.repeats = 3;
    auto handle = scheduler.submit(spec);
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::kFailed);
    const auto m = handle.metrics();
    EXPECT_EQ(m.repeats_completed, 0u);
    // No repeat completed, so there is no "best" to report — the
    // pre-fix code leaked 0.0-vs-uninitialized inconsistencies here.
    EXPECT_EQ(m.best_run_seconds, 0.0);
    EXPECT_EQ(m.run_seconds, 0.0);
    EXPECT_EQ(m.tasks, 0u);
    scheduler.drain();
}

TEST(ServeScheduler, StatsSnapshotsAreConsistentUnderLoad)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a"}, 2, 4));
    std::atomic<bool> stop{false};
    std::atomic<u64> attempts{0};

    // Hammer stats() while submitters race completions: every
    // snapshot must satisfy the conservation law. Before the fix,
    // queued came from the queue's own lock while the other counters
    // came from the scheduler mutex, so torn snapshots double- or
    // under-counted in-flight jobs.
    std::thread poller([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto stats = scheduler.stats();
            EXPECT_EQ(stats.submitted,
                      stats.queued + stats.running + stats.completed +
                          stats.failed + stats.cancelled)
                << "queued=" << stats.queued
                << " running=" << stats.running
                << " completed=" << stats.completed;
        }
    });
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
            for (int i = 0; i < 200; ++i) {
                scheduler.submit(job("a"));
                attempts.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& thread : submitters) thread.join();
    scheduler.drain();
    stop.store(true, std::memory_order_release);
    poller.join();

    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted + stats.rejected, attempts.load());
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.submitted, stats.completed);
}

TEST(ServeScheduler, HandleIdsAreAdmissionOrder)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate", "a"}, 1, 1));
    auto blocker = scheduler.submit(job("gate"));
    control.awaitStart("gate"); // worker busy, queue empty
    auto second = scheduler.submit(job("a"));
    auto rejected = scheduler.submit(job("a")); // queue holds 1
    EXPECT_EQ(blocker.id(), 1u);
    EXPECT_EQ(second.id(), 2u);
    // A rejected job was never admitted and gets no id.
    EXPECT_EQ(rejected.status(), JobStatus::kRejected);
    EXPECT_EQ(rejected.id(), 0u);
    control.release("gate");
    scheduler.drain();
}

TEST(ServeScheduler, LatencySnapshotCoversFinishedJobs)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a", "boom"}, 2, 8));
    // An empty scheduler reports an all-zero snapshot.
    const auto empty = scheduler.stats().latency;
    EXPECT_EQ(empty.jobs, 0u);
    EXPECT_DOUBLE_EQ(empty.end_to_end.p50_ms, 0.0);

    for (int i = 0; i < 3; ++i) scheduler.submit(job("a"));
    scheduler.submit(job("boom")); // failed jobs count too
    scheduler.drain();

    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.failed, 1u);
    const auto& lat = stats.latency;
    EXPECT_EQ(lat.jobs, 4u); // completed + failed
    // Every decomposition stage produced positive quantiles with
    // p50 <= p95 <= p99, and a job's end-to-end latency dominates its
    // queue wait.
    for (const auto* q : {&lat.queue_wait, &lat.prepare, &lat.run,
                          &lat.end_to_end}) {
        EXPECT_GT(q->p50_ms, 0.0);
        EXPECT_LE(q->p50_ms, q->p95_ms);
        EXPECT_LE(q->p95_ms, q->p99_ms);
    }
    EXPECT_GE(lat.end_to_end.p99_ms, lat.queue_wait.p50_ms);
}

TEST(ServeScheduler, WaitForZeroAndNegativeTimeouts)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate"}, 1, 4));
    auto handle = scheduler.submit(job("gate"));
    control.awaitStart("gate");
    // Non-terminal job: zero and negative timeouts return false
    // immediately instead of blocking or throwing.
    EXPECT_FALSE(handle.waitFor(0.0));
    EXPECT_FALSE(handle.waitFor(-1.0));
    control.release("gate");
    handle.wait();
    // Terminal job: every timeout (even negative) reports true.
    EXPECT_TRUE(handle.waitFor(0.0));
    EXPECT_TRUE(handle.waitFor(-1.0));
    scheduler.drain();
}

TEST(ServeScheduler, WaitOnRejectedHandleReturnsImmediately)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate", "a"}, 1, 1));
    auto blocker = scheduler.submit(job("gate"));
    control.awaitStart("gate");
    auto fill = scheduler.submit(job("a"));
    auto rejected = scheduler.submit(job("a"));
    ASSERT_EQ(rejected.status(), JobStatus::kRejected);
    // kRejected is terminal from birth: wait()/waitFor() never block.
    rejected.wait();
    EXPECT_TRUE(rejected.waitFor(0.0));
    EXPECT_FALSE(rejected.cancel()); // nothing queued to remove
    EXPECT_EQ(rejected.metrics().dispatch_seq, 0u);
    control.release("gate");
    scheduler.drain();
}

TEST(ServeScheduler, CancelRacesDispatch)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a"}, 1, 8));
    // Submit-then-cancel immediately, many times: whatever the race's
    // outcome, the job must end exactly cancelled XOR started.
    unsigned cancelled = 0;
    std::vector<JobHandle> handles;
    for (int i = 0; i < 200; ++i) {
        auto handle = scheduler.submit(job("a"));
        if (handle.cancel()) {
            ++cancelled;
            EXPECT_EQ(handle.status(), JobStatus::kCancelled);
        }
        handles.push_back(std::move(handle));
    }
    scheduler.drain();
    unsigned done = 0;
    for (const auto& handle : handles) {
        const auto status = handle.status();
        EXPECT_TRUE(status == JobStatus::kDone ||
                    status == JobStatus::kCancelled);
        if (status == JobStatus::kDone) ++done;
    }
    EXPECT_EQ(done + cancelled, 200u);
    // A cancelled job never reached run(); a done job did, once.
    EXPECT_EQ(control.startOrder().size(), done);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.cancelled, cancelled);
    EXPECT_EQ(stats.completed, done);
}

TEST(ServeScheduler, WaitForTimesOut)
{
    FakeControl control;
    control.gated.insert("gate");
    Scheduler scheduler(fakeConfig(&control, {"gate"}, 1, 4));
    auto handle = scheduler.submit(job("gate"));
    control.awaitStart("gate");
    EXPECT_FALSE(handle.waitFor(0.01));
    control.release("gate");
    handle.wait();
    EXPECT_EQ(handle.status(), JobStatus::kDone);
}

TEST(ServeScheduler, DrainStopsAdmissions)
{
    FakeControl control;
    Scheduler scheduler(fakeConfig(&control, {"a"}, 2, 8));
    std::vector<JobHandle> handles;
    for (int i = 0; i < 5; ++i) {
        handles.push_back(scheduler.submit(job("a")));
    }
    scheduler.drain();
    for (const auto& handle : handles) {
        EXPECT_EQ(handle.status(), JobStatus::kDone);
    }
    auto late = scheduler.submit(job("a"));
    EXPECT_EQ(late.status(), JobStatus::kRejected);
    EXPECT_NE(late.error().find("closed"), std::string::npos)
        << late.error();
    scheduler.drain(); // idempotent
}

TEST(ServeScheduler, ShutdownNowCancelsQueuedJobs)
{
    FakeControl control;
    control.gated.insert("gate");
    auto scheduler = std::make_unique<Scheduler>(
        fakeConfig(&control, {"gate", "a"}, 1, 8));
    auto running = scheduler->submit(job("gate"));
    control.awaitStart("gate");
    auto queued = scheduler->submit(job("a"));
    // shutdownNow cancels the queued job immediately, then blocks on
    // the running one; release its gate from another thread.
    std::thread releaser([&] {
        queued.wait(); // becomes kCancelled during shutdown
        control.release("gate");
    });
    scheduler->shutdownNow();
    releaser.join();
    EXPECT_EQ(running.status(), JobStatus::kDone);
    EXPECT_EQ(queued.status(), JobStatus::kCancelled);
    EXPECT_NE(queued.error().find("shutdown"), std::string::npos);
    scheduler.reset(); // destructor after shutdownNow is a no-op
}

// ---------------------------------------------------------------------
// Single-flight prepare through the artifact cache

/** Fake kernel whose prepare() builds-or-loads one shared artifact. */
class CachingKernel : public Benchmark
{
  public:
    CachingKernel(store::ArtifactCache* cache,
                  std::atomic<int>* builds)
        : cache_(cache), builds_(builds)
    {
        info_.name = "caching";
    }

    const Info& info() const override { return info_; }

    void
    prepare(DatasetSize) override
    {
        std::vector<u8> payload;
        const bool cached = cache_->fetchOrBuild(
            "shared", 7,
            [&](const std::shared_ptr<store::StoreReader>& reader) {
                const auto bytes = reader->section("payload");
                payload.assign(bytes.begin(), bytes.end());
            },
            [&] {
                ++*builds_;
                // Slow build: every concurrent job lands in the
                // flight while this sleeps.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                payload.assign(64, u8{0xAB});
                cache_->write("shared", 7,
                              [&](store::StoreWriter& writer) {
                                  writer.add("payload",
                                             payload.data(),
                                             payload.size());
                              });
            });
        (void)cached;
        requireInput(payload.size() == 64 && payload[0] == u8{0xAB},
                     "bad artifact payload");
    }

    u64 run(ThreadPool&) override { return 1; }
    u64 characterize(CharProbe&) override { return 0; }
    std::vector<u64> taskWork() override { return {1}; }

  private:
    Info info_;
    store::ArtifactCache* cache_;
    std::atomic<int>* builds_;
};

TEST(ServeScheduler, SingleFlightPrepare)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "gb_serve_singleflight";
    std::filesystem::remove_all(dir);
    store::ArtifactCache cache(dir.string());
    std::atomic<int> builds{0};

    Scheduler::Config config;
    config.workers = 4;
    config.queue_depth = 8;
    config.kernels = {"caching"};
    config.kernel_factory = [&](const std::string&) {
        return std::make_unique<CachingKernel>(&cache, &builds);
    };
    Scheduler scheduler(std::move(config));
    std::vector<JobHandle> handles;
    for (int i = 0; i < 4; ++i) {
        handles.push_back(scheduler.submit(job("caching")));
    }
    scheduler.drain();
    for (const auto& handle : handles) {
        EXPECT_EQ(handle.status(), JobStatus::kDone)
            << handle.error();
    }
    // The whole point: 4 concurrent prepares, exactly one build. The
    // three non-builders each loaded the published artifact (a hit),
    // whether they blocked in the flight or arrived after publish.
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_LE(cache.flightWaits(), 3u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Bounded queue

TEST(ServeBoundedQueue, PushPopAndCapacity)
{
    serve::BoundedQueue<int> queue(2);
    std::string reason;
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3, &reason));
    EXPECT_NE(reason.find("queue full"), std::string::npos);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_TRUE(queue.tryPush(3));
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_EQ(queue.pop().value(), 3);
}

TEST(ServeBoundedQueue, CloseDrainsThenEnds)
{
    serve::BoundedQueue<int> queue(4);
    queue.tryPush(1);
    queue.tryPush(2);
    queue.close();
    std::string reason;
    EXPECT_FALSE(queue.tryPush(3, &reason));
    EXPECT_NE(reason.find("closed"), std::string::npos);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(ServeBoundedQueue, EraseIfRemovesMatch)
{
    serve::BoundedQueue<int> queue(4);
    queue.tryPush(1);
    queue.tryPush(2);
    queue.tryPush(3);
    const auto removed =
        queue.eraseIf([](const int& v) { return v == 2; });
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(*removed, 2);
    EXPECT_FALSE(
        queue.eraseIf([](const int& v) { return v == 9; }).has_value());
    EXPECT_EQ(queue.size(), 2u);
}

TEST(ServeBoundedQueue, PopSelectPicksByPolicy)
{
    serve::BoundedQueue<int> queue(4);
    queue.tryPush(10);
    queue.tryPush(5);
    queue.tryPush(7);
    // Policy: pop the smallest element.
    const auto smallest = queue.popSelect([](const std::deque<int>& q) {
        size_t best = 0;
        for (size_t i = 1; i < q.size(); ++i) {
            if (q[i] < q[best]) best = i;
        }
        return best;
    });
    EXPECT_EQ(smallest.value(), 5);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(ServeBoundedQueue, PopSelectRejectsOutOfRangeIndex)
{
    serve::BoundedQueue<int> queue(4);
    queue.tryPush(1);
    queue.tryPush(2);
    // A selector returning a past-the-end index is a policy bug; it
    // must surface as an error, not silent UB on the deque.
    EXPECT_THROW(queue.popSelect(
                     [](const std::deque<int>& q) { return q.size(); }),
                 InternalError);
    EXPECT_THROW(queue.popSelect([](const std::deque<int>&) {
                     return static_cast<size_t>(1u << 20);
                 }),
                 InternalError);
    // The queue survives the bad selector untouched.
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pop().value(), 1);
}

} // namespace
} // namespace gb
