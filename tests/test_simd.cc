/**
 * @file
 * Tests for the gb::simd execution engine: dispatch-level plumbing,
 * scalar/SIMD equivalence for banded-SW (bit-identical scores, end
 * positions and abort flags at every dispatch level) and PairHMM
 * (within 1e-5 of the scalar float path, exact double fallback).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "io/dna.h"
#include "phmm/pairhmm.h"
#include "simd/bsw_engine.h"
#include "simd/chain_engine.h"
#include "simd/phmm_engine.h"
#include "simd/poa_engine.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace gb {
namespace {

/** Restores the process-global dispatch level on scope exit. */
struct LevelGuard
{
    ~LevelGuard() { simd::resetSimdLevel(); }
};

/** Levels this host can actually execute (always includes scalar). */
std::vector<simd::SimdLevel>
testableLevels()
{
    std::vector<simd::SimdLevel> levels{simd::SimdLevel::kScalar};
    const simd::SimdLevel best = simd::detectSimdLevel();
    if (best >= simd::SimdLevel::kSse4) {
        levels.push_back(simd::SimdLevel::kSse4);
    }
    if (best >= simd::SimdLevel::kAvx2) {
        levels.push_back(simd::SimdLevel::kAvx2);
    }
    return levels;
}

TEST(SimdDispatch, ParseAcceptsKnownNames)
{
    EXPECT_EQ(simd::parseSimdLevel("scalar"), simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::parseSimdLevel("sse4"), simd::SimdLevel::kSse4);
    EXPECT_EQ(simd::parseSimdLevel("sse4.2"), simd::SimdLevel::kSse4);
    EXPECT_EQ(simd::parseSimdLevel("sse42"), simd::SimdLevel::kSse4);
    EXPECT_EQ(simd::parseSimdLevel("avx2"), simd::SimdLevel::kAvx2);
    EXPECT_FALSE(simd::parseSimdLevel("avx512").has_value());
    EXPECT_FALSE(simd::parseSimdLevel("").has_value());
}

TEST(SimdDispatch, NamesRoundTrip)
{
    for (const simd::SimdLevel level :
         {simd::SimdLevel::kScalar, simd::SimdLevel::kSse4,
          simd::SimdLevel::kAvx2}) {
        EXPECT_EQ(simd::parseSimdLevel(simd::simdLevelName(level)),
                  level);
    }
}

TEST(SimdDispatch, SetLevelClampsToDetected)
{
    LevelGuard guard;
    const simd::SimdLevel best = simd::detectSimdLevel();
    simd::setSimdLevel(simd::SimdLevel::kAvx2);
    EXPECT_LE(simd::activeSimdLevel(), best);
    simd::setSimdLevel(simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::activeSimdLevel(), simd::SimdLevel::kScalar);
}

TEST(SimdDispatch, LaneCountsMatchLevel)
{
    EXPECT_EQ(simd::bswLanes(simd::SimdLevel::kScalar), 1u);
    EXPECT_EQ(simd::phmmLanes(simd::SimdLevel::kScalar), 1u);
    EXPECT_EQ(simd::chainLanes(simd::SimdLevel::kScalar), 1u);
    EXPECT_EQ(simd::poaLanes(simd::SimdLevel::kScalar), 1u);
    const simd::SimdLevel best = simd::detectSimdLevel();
    if (best >= simd::SimdLevel::kSse4) {
        EXPECT_EQ(simd::bswLanes(simd::SimdLevel::kSse4), 8u);
        EXPECT_EQ(simd::phmmLanes(simd::SimdLevel::kSse4), 4u);
        EXPECT_EQ(simd::chainLanes(simd::SimdLevel::kSse4), 4u);
        EXPECT_EQ(simd::poaLanes(simd::SimdLevel::kSse4), 4u);
    }
    if (best >= simd::SimdLevel::kAvx2) {
        EXPECT_EQ(simd::bswLanes(simd::SimdLevel::kAvx2), 16u);
        EXPECT_EQ(simd::phmmLanes(simd::SimdLevel::kAvx2), 8u);
        EXPECT_EQ(simd::chainLanes(simd::SimdLevel::kAvx2), 8u);
        EXPECT_EQ(simd::poaLanes(simd::SimdLevel::kAvx2), 8u);
    }
}

/** Random pair mix covering the interesting regimes: similar pairs,
 *  unrelated pairs, z-drop triggers, N bases and ragged lengths. */
struct PairStorage
{
    std::vector<std::vector<u8>> queries;
    std::vector<std::vector<u8>> targets;
    std::vector<SwPair> pairs;

    void
    add(std::vector<u8> q, std::vector<u8> t)
    {
        queries.push_back(std::move(q));
        targets.push_back(std::move(t));
    }

    void
    finalize()
    {
        pairs.clear();
        for (size_t i = 0; i < queries.size(); ++i) {
            pairs.push_back({queries[i], targets[i]});
        }
    }
};

PairStorage
makeRandomPairs(u64 count, u64 seed)
{
    Rng rng(seed);
    PairStorage set;
    for (u64 i = 0; i < count; ++i) {
        const u64 m = 1 + rng.below(250);
        std::vector<u8> q(m);
        for (auto& c : q) c = static_cast<u8>(rng.below(4));
        std::vector<u8> t;
        switch (i % 4) {
          case 0: { // mutated copy: high scores, varied ends
            t = q;
            for (auto& c : t) {
                if (rng.chance(0.08)) c = static_cast<u8>(rng.below(4));
            }
            break;
          }
          case 1: { // unrelated: low scores, early z-drops
            t.resize(1 + rng.below(250));
            for (auto& c : t) c = static_cast<u8>(rng.below(4));
            break;
          }
          case 2: { // good prefix then divergence: z-drop mid-way
            t = q;
            for (size_t j = t.size() / 2; j < t.size(); ++j) {
                t[j] = static_cast<u8>(rng.below(4));
            }
            t.insert(t.end(), 40 + rng.below(40),
                     static_cast<u8>(rng.below(4)));
            break;
          }
          default: { // copy with N bases sprinkled in
            t = q;
            for (auto& c : t) {
                if (rng.chance(0.05)) c = 4; // N code
            }
            break;
          }
        }
        set.add(std::move(q), std::move(t));
    }
    set.finalize();
    return set;
}

void
expectEnginesAgree(const PairStorage& set, const SwParams& params)
{
    std::vector<SwResult> scalar(set.pairs.size());
    for (size_t i = 0; i < set.pairs.size(); ++i) {
        scalar[i] =
            bandedSw(set.pairs[i].query, set.pairs[i].target, params);
    }
    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        ASSERT_EQ(simd::activeSimdLevel(), level);
        const auto got = simd::bswAlign(set.pairs, params);
        ASSERT_EQ(got.size(), set.pairs.size());
        for (size_t i = 0; i < set.pairs.size(); ++i) {
            const std::string ctx = "level " +
                std::string(simd::simdLevelName(level)) + ", pair " +
                std::to_string(i);
            EXPECT_EQ(got[i].score, scalar[i].score) << ctx;
            EXPECT_EQ(got[i].query_end, scalar[i].query_end) << ctx;
            EXPECT_EQ(got[i].target_end, scalar[i].target_end) << ctx;
            EXPECT_EQ(got[i].aborted, scalar[i].aborted) << ctx;
            EXPECT_EQ(got[i].cell_updates, scalar[i].cell_updates)
                << ctx;
        }
    }
}

TEST(SimdBsw, MatchesScalarOnRandomPairsAllLevels)
{
    // >= 1000 pairs across the regime mix, default parameters.
    expectEnginesAgree(makeRandomPairs(1024, 501), SwParams{});
}

TEST(SimdBsw, MatchesScalarWithTightZdrop)
{
    SwParams p;
    p.zdrop = 30;
    expectEnginesAgree(makeRandomPairs(256, 502), p);
}

TEST(SimdBsw, MatchesScalarAcrossBandWidths)
{
    for (const i32 band : {1, 7, 33, 128}) {
        SwParams p;
        p.band_width = band;
        expectEnginesAgree(makeRandomPairs(128, 503 + band), p);
    }
}

TEST(SimdBsw, OversizeSequencesFallBackToScalar)
{
    // Lengths beyond the i16-safe cap route to the scalar kernel but
    // must still produce identical results through the same API.
    Rng rng(504);
    PairStorage set;
    std::vector<u8> q(static_cast<u64>(simd::kBswMaxSimdLen) + 10);
    for (auto& c : q) c = static_cast<u8>(rng.below(4));
    std::vector<u8> t = q;
    for (auto& c : t) {
        if (rng.chance(0.02)) c = static_cast<u8>(rng.below(4));
    }
    set.add(std::move(q), std::move(t));
    // And one short pair in the same call to exercise mixed batches.
    std::vector<u8> q2(50);
    for (auto& c : q2) c = static_cast<u8>(rng.below(4));
    set.add(q2, q2);
    set.finalize();
    expectEnginesAgree(set, SwParams{});
}

TEST(SimdBsw, NonLocalModeFallsBackToScalar)
{
    SwParams p;
    p.local = false;
    expectEnginesAgree(makeRandomPairs(64, 505), p);
}

TEST(SimdBsw, StatsCountUsefulCellsExactly)
{
    const PairStorage set = makeRandomPairs(200, 506);
    const SwParams p;
    u64 scalar_cells = 0;
    for (const auto& pair : set.pairs) {
        scalar_cells +=
            bandedSw(pair.query, pair.target, p).cell_updates;
    }
    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        BatchSwStats stats;
        simd::bswAlign(set.pairs, p, &stats);
        EXPECT_EQ(stats.useful_cells, scalar_cells)
            << simd::simdLevelName(level);
        EXPECT_GE(stats.totalCellUpdates(), scalar_cells)
            << simd::simdLevelName(level);
        EXPECT_GE(stats.overworkRatio(), 1.0)
            << simd::simdLevelName(level);
        EXPECT_EQ(stats.lanes, simd::bswLanes(level));
    }
}

/** Random PairHMM inputs: read + qualities + related haplotype. */
struct PhmmCase
{
    std::vector<u8> read;
    std::vector<u8> quals;
    std::vector<u8> hap;
};

std::vector<PhmmCase>
makePhmmCases(u64 count, u64 seed)
{
    Rng rng(seed);
    std::vector<PhmmCase> cases;
    for (u64 i = 0; i < count; ++i) {
        PhmmCase c;
        c.read.resize(1 + rng.below(150));
        for (auto& b : c.read) b = static_cast<u8>(rng.below(4));
        c.quals.resize(c.read.size());
        for (auto& q : c.quals) {
            q = static_cast<u8>(10 + rng.below(31));
        }
        if (i % 3 == 0) {
            c.hap.resize(1 + rng.below(200));
            for (auto& b : c.hap) b = static_cast<u8>(rng.below(4));
        } else {
            c.hap = c.read;
            for (auto& b : c.hap) {
                if (rng.chance(0.05)) b = static_cast<u8>(rng.below(4));
            }
            c.hap.insert(c.hap.end(), rng.below(30),
                         static_cast<u8>(rng.below(4)));
        }
        cases.push_back(std::move(c));
    }
    return cases;
}

TEST(SimdPhmm, MatchesScalarWithin1e5AllLevels)
{
    const PhmmParams params;
    const auto cases = makePhmmCases(300, 601);
    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        for (size_t i = 0; i < cases.size(); ++i) {
            const auto& c = cases[i];
            const PhmmResult scalar =
                pairHmmLogLikelihood(c.read, c.quals, c.hap, params);
            const PhmmResult got =
                simd::phmmLogLikelihood(c.read, c.quals, c.hap, params);
            EXPECT_NEAR(got.log10_likelihood, scalar.log10_likelihood,
                        1e-5)
                << "level " << simd::simdLevelName(level) << ", case "
                << i;
            EXPECT_EQ(got.cell_updates, scalar.cell_updates)
                << "level " << simd::simdLevelName(level) << ", case "
                << i;
        }
    }
}

TEST(SimdPhmm, UnderflowFallsBackToDoubleExactly)
{
    // A long read against an unrelated haplotype at high base quality
    // drives the float forward pass below kMinAcceptedFloat, forcing
    // the double re-run in both the scalar wrapper and the SIMD
    // engine; the fallback results must agree exactly.
    Rng rng(602);
    PhmmCase c;
    c.read.resize(280);
    for (auto& b : c.read) b = static_cast<u8>(rng.below(4));
    c.quals.assign(c.read.size(), 40);
    c.hap.resize(300);
    for (auto& b : c.hap) b = static_cast<u8>(rng.below(4));

    const PhmmParams params;
    const PhmmResult scalar =
        pairHmmLogLikelihood(c.read, c.quals, c.hap, params);
    ASSERT_TRUE(scalar.used_double)
        << "test input no longer triggers the float underflow";
    for (const simd::SimdLevel level : testableLevels()) {
        LevelGuard guard;
        simd::setSimdLevel(level);
        const PhmmResult got =
            simd::phmmLogLikelihood(c.read, c.quals, c.hap, params);
        EXPECT_TRUE(got.used_double)
            << simd::simdLevelName(level);
        EXPECT_DOUBLE_EQ(got.log10_likelihood, scalar.log10_likelihood)
            << simd::simdLevelName(level);
    }
}

} // namespace
} // namespace gb
