/**
 * @file
 * Tests for the synthetic-data substrate: genomes, variants, reads,
 * signals. These validate the statistical shape the characterization
 * relies on (error rates, repeats, over-representation).
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "io/dna.h"
#include "simdata/genome.h"
#include "simdata/pore_model.h"
#include "simdata/reads.h"
#include "simdata/variants.h"
#include "util/stats.h"

namespace gb {
namespace {

TEST(Genome, LengthAndAlphabet)
{
    GenomeParams p;
    p.length = 50'000;
    const Genome g = generateGenome(p);
    EXPECT_EQ(g.seq.size(), 50'000u);
    EXPECT_EQ(g.codes.size(), 50'000u);
    for (char c : g.seq) {
        EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
}

TEST(Genome, GcContentNearTarget)
{
    GenomeParams p;
    p.length = 200'000;
    p.gc_content = 0.41;
    const Genome g = generateGenome(p);
    u64 gc = 0;
    for (char c : g.seq) gc += c == 'G' || c == 'C';
    EXPECT_NEAR(static_cast<double>(gc) / g.seq.size(), 0.41, 0.04);
}

TEST(Genome, DeterministicPerSeed)
{
    GenomeParams p;
    p.length = 10'000;
    EXPECT_EQ(generateGenome(p).seq, generateGenome(p).seq);
    p.seed = 2;
    EXPECT_NE(generateGenome(GenomeParams{}).seq.substr(0, 1000),
              generateGenome(p).seq.substr(0, 1000));
}

TEST(Genome, RepeatsInflateDuplicateKmers)
{
    GenomeParams with;
    with.length = 100'000;
    with.repeat_fraction = 0.4;
    GenomeParams without = with;
    without.repeat_fraction = 0.0;
    without.seed = with.seed;

    auto duplicateFraction = [](const Genome& g) {
        std::map<std::string, int> counts;
        for (size_t i = 0; i + 21 <= g.seq.size(); i += 7) {
            ++counts[g.seq.substr(i, 21)];
        }
        u64 dup = 0;
        u64 total = 0;
        for (const auto& [k, c] : counts) {
            total += static_cast<u64>(c);
            if (c > 1) dup += static_cast<u64>(c);
        }
        return static_cast<double>(dup) / static_cast<double>(total);
    };
    EXPECT_GT(duplicateFraction(generateGenome(with)),
              duplicateFraction(generateGenome(without)) + 0.05);
}

TEST(Variants, TruthSetMatchesSequenceEdits)
{
    GenomeParams gp;
    gp.length = 30'000;
    const Genome g = generateGenome(gp);
    VariantParams vp;
    const SampleGenome sample = injectVariants(g.seq, vp);

    // SNVs: sample base differs from ref base at snv positions (for
    // this check indels must not shift coordinates, so re-inject with
    // SNVs only).
    VariantParams snv_only;
    snv_only.ins_rate = 0.0;
    snv_only.del_rate = 0.0;
    const SampleGenome s2 = injectVariants(g.seq, snv_only);
    EXPECT_EQ(s2.seq.size(), g.seq.size());
    u64 diffs = 0;
    for (size_t i = 0; i < g.seq.size(); ++i) {
        diffs += s2.seq[i] != g.seq[i];
    }
    EXPECT_EQ(diffs, s2.truth.size());
    for (const auto& v : s2.truth) {
        EXPECT_EQ(v.type, VariantType::kSnv);
        EXPECT_EQ(std::string(1, g.seq[v.ref_pos]), v.ref);
        EXPECT_EQ(std::string(1, s2.seq[v.ref_pos]), v.alt);
    }
    // Full params produce all three types eventually.
    EXPECT_FALSE(sample.truth.empty());
}

TEST(ShortReads, CoverageLengthAndErrors)
{
    GenomeParams gp;
    gp.length = 20'000;
    const Genome g = generateGenome(gp);
    ShortReadParams rp;
    rp.coverage = 15.0;
    const auto reads = simulateShortReads(g.seq, rp);

    u64 bases = 0;
    u64 mismatches = 0;
    for (const auto& r : reads) {
        ASSERT_EQ(r.record.seq.size(), 151u);
        ASSERT_EQ(r.record.qual.size(), 151u);
        bases += 151;
        // Compare truth-oriented seq against the genome.
        const std::string& ref_oriented = r.truth.seq;
        for (size_t i = 0; i < ref_oriented.size(); ++i) {
            mismatches += ref_oriented[i] != g.seq[r.true_pos + i];
        }
        r.truth.validate();
    }
    const double cov = static_cast<double>(bases) / g.seq.size();
    EXPECT_NEAR(cov, 15.0, 0.5);
    const double err =
        static_cast<double>(mismatches) / static_cast<double>(bases);
    EXPECT_GT(err, 0.001);
    EXPECT_LT(err, 0.01);
}

TEST(ShortReads, ReverseStrandConsistency)
{
    GenomeParams gp;
    gp.length = 5'000;
    const Genome g = generateGenome(gp);
    ShortReadParams rp;
    rp.coverage = 2.0;
    rp.error_rate = 0.0;
    const auto reads = simulateShortReads(g.seq, rp);
    for (const auto& r : reads) {
        if (!r.reverse) continue;
        // record.seq is the sequencer view; truth.seq is
        // reference-oriented.
        EXPECT_EQ(reverseComplement(r.record.seq), r.truth.seq);
        EXPECT_EQ(r.truth.seq, g.seq.substr(r.true_pos, 151));
    }
}

TEST(LongReads, LengthDistributionAndCigars)
{
    GenomeParams gp;
    gp.length = 100'000;
    const Genome g = generateGenome(gp);
    LongReadParams lp;
    lp.coverage = 5.0;
    const auto reads = simulateLongReads(g.seq, lp);

    RunningStats lengths;
    for (const auto& r : reads) {
        lengths.add(static_cast<double>(r.record.seq.size()));
        r.truth.validate();
        // CIGAR ref span must fit in the genome.
        EXPECT_LE(r.truth.endPos(), g.seq.size());
    }
    EXPECT_GT(lengths.mean(), 3'000.0);
    EXPECT_LT(lengths.mean(), 20'000.0);
    EXPECT_GE(lengths.min(), 500.0);
}

TEST(LongReads, ErrorRateInOntBand)
{
    GenomeParams gp;
    gp.length = 50'000;
    const Genome g = generateGenome(gp);
    LongReadParams lp;
    lp.coverage = 3.0;
    const auto reads = simulateLongReads(g.seq, lp);
    // Measure edit operations from the truth CIGAR + mismatches.
    u64 matches = 0;
    u64 edits = 0;
    for (const auto& r : reads) {
        u64 qpos = 0;
        u64 gpos = r.true_pos;
        for (const auto& unit : r.truth.cigar.units()) {
            switch (unit.op) {
              case CigarOp::kMatch:
                for (u32 i = 0; i < unit.len; ++i) {
                    if (r.truth.seq[qpos + i] != g.seq[gpos + i]) {
                        ++edits;
                    } else {
                        ++matches;
                    }
                }
                qpos += unit.len;
                gpos += unit.len;
                break;
              case CigarOp::kInsertion:
                edits += unit.len;
                qpos += unit.len;
                break;
              case CigarOp::kDeletion:
                edits += unit.len;
                gpos += unit.len;
                break;
              default:
                break;
            }
        }
    }
    const double err = static_cast<double>(edits) /
                       static_cast<double>(matches + edits);
    EXPECT_GT(err, 0.05);
    EXPECT_LT(err, 0.16); // the paper's 5-15 % ONT band
}

TEST(PoreModel, LevelsInR94Band)
{
    PoreModel model(6, 99);
    EXPECT_EQ(model.numKmers(), 4096u);
    RunningStats means;
    for (u32 r = 0; r < model.numKmers(); ++r) {
        const auto& km = model.byRank(r);
        EXPECT_GE(km.level_mean, 60.0f);
        EXPECT_LE(km.level_mean, 130.0f);
        EXPECT_GT(km.level_stdv, 0.5f);
        means.add(km.level_mean);
    }
    EXPECT_GT(means.stddev(), 10.0); // levels spread over the range
    EXPECT_EQ(model.rankOf("AAAAAA"), 0u);
    EXPECT_EQ(model.rankOf("AAAAAC"), 1u);
    EXPECT_THROW(model.rankOf("AAN"), InputError);
}

TEST(Signal, OverRepresentationMatchesPaperClaim)
{
    PoreModel model(6, 7);
    SignalParams sp;
    sp.resample_prob = 0.35;
    GenomeParams gp;
    gp.length = 2'000;
    const Genome g = generateGenome(gp);
    const auto sim = simulateSignal(model, g.seq, sp);
    const u64 n_kmers = g.seq.size() - 6 + 1;
    const double events_per_kmer =
        static_cast<double>(sim.events.size()) /
        static_cast<double>(n_kmers);
    // "k-mers are often over-represented (up to 2x)".
    EXPECT_GT(events_per_kmer, 1.2);
    EXPECT_LT(events_per_kmer, 2.0);
    // Events tile the sample stream.
    u64 covered = 0;
    for (const auto& e : sim.events) covered += e.length;
    EXPECT_EQ(covered, sim.samples.size());
}

} // namespace
} // namespace gb
