/**
 * @file
 * Tests for the gb::store artifact store: container round trips in
 * both reader modes, corruption/truncation/version detection, the
 * FM-index / k-mer-table / dataset serializers, and the build-or-load
 * cache (including warm-vs-cold kernel-input identity).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arch/probe.h"
#include "core/benchmark.h"
#include "index/fm_index.h"
#include "io/dna.h"
#include "kmer/kmer_counter.h"
#include "store/artifacts.h"
#include "store/cache.h"
#include "store/container.h"
#include "util/hash.h"
#include "util/rng.h"

namespace gb {
namespace {

using store::ReadMode;
using store::StoreReader;
using store::StoreWriter;

/** Fresh per-test scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        const auto* info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = std::filesystem::temp_directory_path() /
                (std::string("gb_store_") + info->test_suite_name() +
                 "_" + info->name());
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir() { std::filesystem::remove_all(path_); }

    std::string
    file(const std::string& name) const
    {
        return (path_ / name).string();
    }
    std::string dir() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

void
flipByte(const std::string& path, u64 offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

std::string
writeSample(const ScratchDir& scratch)
{
    const std::string path = scratch.file("sample.gbs");
    StoreWriter writer(path);
    std::vector<u32> numbers(1000);
    for (u32 i = 0; i < numbers.size(); ++i) numbers[i] = i * 7 + 1;
    writer.addVec("numbers", std::span<const u32>(numbers));
    const std::string text = "the quick brown fox";
    writer.add("text", text.data(), text.size());
    writer.addPod("answer", u64{42});
    writer.finish();
    return path;
}

TEST(StoreContainer, RoundTripBothModes)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);

    for (ReadMode mode : {ReadMode::kMmap, ReadMode::kStream}) {
        auto reader = StoreReader::open(path, mode);
        EXPECT_EQ(reader.sections().size(), 3u);
        EXPECT_TRUE(reader.has("numbers"));
        EXPECT_TRUE(reader.has("text"));
        EXPECT_FALSE(reader.has("missing"));

        const auto numbers = reader.sectionAs<u32>("numbers");
        ASSERT_EQ(numbers.size(), 1000u);
        EXPECT_EQ(numbers[0], 1u);
        EXPECT_EQ(numbers[999], 999u * 7 + 1);

        const auto text = reader.section("text");
        EXPECT_EQ(std::string(text.begin(), text.end()),
                  "the quick brown fox");

        const auto answer = reader.sectionAs<u64>("answer");
        ASSERT_EQ(answer.size(), 1u);
        EXPECT_EQ(answer[0], 42u);

        EXPECT_NO_THROW(reader.verifyAll());
        EXPECT_THROW(reader.section("missing"), InputError);
    }
}

TEST(StoreContainer, MmapAndStreamAgreeByteForByte)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);
    auto mmap_reader = StoreReader::open(path, ReadMode::kMmap);
    auto stream_reader = StoreReader::open(path, ReadMode::kStream);
    ASSERT_EQ(mmap_reader.sections().size(),
              stream_reader.sections().size());
    for (const auto& entry : mmap_reader.sections()) {
        const auto a = mmap_reader.section(entry.name);
        const auto b = stream_reader.section(entry.name);
        ASSERT_EQ(a.size(), b.size()) << entry.name;
        EXPECT_EQ(std::vector<u8>(a.begin(), a.end()),
                  std::vector<u8>(b.begin(), b.end()))
            << entry.name;
    }
}

TEST(StoreContainer, SectionsAreAligned)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);
    auto reader = StoreReader::open(path);
    for (const auto& entry : reader.sections()) {
        EXPECT_EQ(entry.offset % store::kAlign, 0u) << entry.name;
    }
}

TEST(StoreContainer, DetectsFlippedPayloadByte)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);
    // Flip one byte inside every section in turn; each must fail.
    const auto toc = StoreReader::open(path).sections();
    for (const auto& entry : toc) {
        const std::string copy = scratch.file("flip.gbs");
        std::filesystem::copy_file(
            path, copy,
            std::filesystem::copy_options::overwrite_existing);
        flipByte(copy, entry.offset + entry.size / 2);
        auto reader = StoreReader::open(copy);
        EXPECT_THROW(reader.verifySection(entry.name), InputError)
            << entry.name;
        EXPECT_THROW(reader.verifyAll(), InputError) << entry.name;
    }
}

TEST(StoreContainer, DetectsTocCorruption)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);
    const u64 size = std::filesystem::file_size(path);
    flipByte(path, size - 10); // inside the trailing TOC block
    EXPECT_THROW(StoreReader::open(path), InputError);
}

TEST(StoreContainer, DetectsTruncation)
{
    ScratchDir scratch;
    const std::string path = writeSample(scratch);
    const u64 size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    EXPECT_THROW(StoreReader::open(path), InputError);
    std::filesystem::resize_file(path, 10); // shorter than the header
    EXPECT_THROW(StoreReader::open(path), InputError);
}

TEST(StoreContainer, RejectsBadMagicAndVersion)
{
    ScratchDir scratch;
    const std::string garbage = scratch.file("garbage.gbs");
    {
        std::ofstream out(garbage, std::ios::binary);
        for (int i = 0; i < 500; ++i) out.put(static_cast<char>(i));
    }
    EXPECT_THROW(StoreReader::open(garbage), InputError);

    const std::string path = writeSample(scratch);
    flipByte(path, 4); // header version field
    try {
        StoreReader::open(path);
        FAIL() << "expected version error";
    } catch (const InputError& e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(StoreContainer, WriterRejectsBadSections)
{
    ScratchDir scratch;
    StoreWriter writer(scratch.file("bad.gbs"));
    const u64 v = 1;
    writer.addPod("dup", v);
    EXPECT_THROW(writer.addPod("dup", v), InputError);
    EXPECT_THROW(writer.addPod("", v), InputError);
    EXPECT_THROW(writer.addPod(std::string(60, 'x'), v), InputError);
}

TEST(StoreContainer, UnfinishedWriterLeavesNoFile)
{
    ScratchDir scratch;
    const std::string path = scratch.file("never.gbs");
    {
        StoreWriter writer(path);
        const u64 v = 7;
        writer.addPod("v", v);
        // no finish()
    }
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(StoreHash, Xxhash64KnownVectors)
{
    // Reference values from the xxHash specification test suite.
    EXPECT_EQ(xxhash64(nullptr, 0, 0), 0xef46db3751d8e999ULL);
    const u8 one = 42;
    EXPECT_EQ(xxhash64(&one, 1, 0), 0x0a9edecebeb03ae4ULL);
    const std::string hello = "Hello, world!";
    EXPECT_EQ(xxhash64(hello.data(), hello.size(), 0),
              0xf58336a78b6f9476ULL);
    const std::string long_text(101, 'a');
    EXPECT_EQ(xxhash64(long_text.data(), long_text.size(), 0),
              0x05d162fa42c9ea90ULL);
}

TEST(StoreHash, KeyMixerIsOrderAndValueSensitive)
{
    const u64 a = KeyMixer().mix("fmi/v1").mix(1).mix(2).value();
    const u64 b = KeyMixer().mix("fmi/v1").mix(2).mix(1).value();
    const u64 c = KeyMixer().mix("fmi/v2").mix(1).mix(2).value();
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, KeyMixer().mix("fmi/v1").mix(1).mix(2).value());
}

// ---------------------------------------------------------------------
// Artifact serializers

std::string
randomReference(u64 length, u64 seed)
{
    Rng rng(seed);
    std::string ref;
    ref.reserve(length);
    for (u64 i = 0; i < length; ++i) ref += "ACGT"[rng.below(4)];
    return ref;
}

TEST(StoreArtifacts, FmIndexRoundTripAndView)
{
    ScratchDir scratch;
    const std::string ref = randomReference(5000, 33);
    const FmIndex original = FmIndex::build(ref, 128);

    const std::string path = scratch.file("fm.gbs");
    {
        StoreWriter writer(path);
        store::addFmIndex(writer, original);
        writer.finish();
    }

    auto stream_reader = StoreReader::open(path, ReadMode::kStream);
    const FmIndex copied = store::readFmIndex(stream_reader);
    auto mmap_reader = std::make_shared<StoreReader>(
        StoreReader::open(path, ReadMode::kMmap));
    const FmIndex viewed = store::viewFmIndex(mmap_reader);
    EXPECT_FALSE(copied.isView());
    if (mmap_reader->mode() == ReadMode::kMmap) {
        EXPECT_TRUE(viewed.isView());
    }

    for (const FmIndex* loaded : {&copied, &viewed}) {
        EXPECT_EQ(loaded->referenceLength(),
                  original.referenceLength());
        EXPECT_EQ(loaded->blockLen(), original.blockLen());
        EXPECT_EQ(loaded->bwtLength(), original.bwtLength());
        for (const char* pattern :
             {"ACGT", "TTT", "GATTACA", "CCGG"}) {
            EXPECT_EQ(loaded->count(pattern), original.count(pattern))
                << pattern;
        }
        // SMEMs exercise occ tables, cumulative counts and the SA.
        const auto codes = encodeDna(ref.substr(100, 80));
        std::vector<Smem> expect_mems;
        std::vector<Smem> got_mems;
        NullProbe probe;
        original.smems(std::span<const u8>(codes), 19, expect_mems,
                       probe);
        loaded->smems(std::span<const u8>(codes), 19, got_mems, probe);
        ASSERT_EQ(got_mems.size(), expect_mems.size());
        for (size_t i = 0; i < got_mems.size(); ++i) {
            EXPECT_EQ(got_mems[i].k, expect_mems[i].k);
            EXPECT_EQ(got_mems[i].s, expect_mems[i].s);
        }
    }

    // The copying loader must be bitwise-identical to the original.
    const auto same = [](auto a, auto b) {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    };
    EXPECT_TRUE(same(copied.occCounts(), original.occCounts()));
    EXPECT_TRUE(same(copied.bwtData(), original.bwtData()));
    EXPECT_TRUE(same(copied.saSamples(), original.saSamples()));
}

TEST(StoreArtifacts, FmIndexLoadDetectsCorruption)
{
    ScratchDir scratch;
    const FmIndex fm = FmIndex::build(randomReference(2000, 7));
    const std::string path = scratch.file("fm.gbs");
    {
        StoreWriter writer(path);
        store::addFmIndex(writer, fm);
        writer.finish();
    }
    // Flip a byte inside the BWT payload.
    u64 bwt_offset = 0;
    const auto probe_reader = StoreReader::open(path);
    for (const auto& entry : probe_reader.sections()) {
        if (std::string(entry.name) == "fm.bwt") {
            bwt_offset = entry.offset + entry.size / 3;
        }
    }
    ASSERT_NE(bwt_offset, 0u);
    flipByte(path, bwt_offset);

    auto reader = std::make_shared<StoreReader>(StoreReader::open(path));
    EXPECT_THROW(store::viewFmIndex(reader), InputError);
    auto stream_reader = StoreReader::open(path, ReadMode::kStream);
    EXPECT_THROW(store::readFmIndex(stream_reader), InputError);
}

TEST(StoreArtifacts, KmerCounterRoundTrip)
{
    ScratchDir scratch;
    KmerCounter table(10, HashScheme::kRobinHood);
    Rng rng(55);
    std::vector<u64> inserted;
    NullProbe probe;
    for (int i = 0; i < 600; ++i) {
        const u64 kmer = rng.below(1u << 20);
        table.add(kmer, probe);
        inserted.push_back(kmer);
    }

    const std::string path = scratch.file("kmer.gbs");
    {
        StoreWriter writer(path);
        store::addKmerCounter(writer, table);
        writer.finish();
    }
    auto reader = StoreReader::open(path);
    const KmerCounter loaded = store::readKmerCounter(reader);
    EXPECT_EQ(loaded.capacity(), table.capacity());
    EXPECT_EQ(loaded.size(), table.size());
    EXPECT_EQ(loaded.scheme(), table.scheme());
    for (u64 kmer : inserted) {
        EXPECT_EQ(loaded.count(kmer), table.count(kmer)) << kmer;
    }
}

TEST(StoreArtifacts, RaggedRowsRoundTrip)
{
    ScratchDir scratch;
    const std::vector<std::vector<u8>> byte_rows{
        {0, 1, 2, 3}, {}, {3, 3, 3}, {0}};
    const std::vector<std::string> string_rows{"ACGT", "", "TTAGGG"};
    std::vector<std::vector<Event>> event_rows(3);
    event_rows[0].push_back(Event{10, 5, 80.5f, 1.25f});
    event_rows[0].push_back(Event{15, 3, 91.0f, 0.5f});
    event_rows[2].push_back(Event{0, 1, 60.0f, 2.0f});

    const std::string path = scratch.file("rows.gbs");
    {
        StoreWriter writer(path);
        store::addByteRows(writer, "bytes",
                           std::span<const std::vector<u8>>(byte_rows));
        store::addStringRows(
            writer, "strings",
            std::span<const std::string>(string_rows));
        store::addEventRows(
            writer, "events",
            std::span<const std::vector<Event>>(event_rows));
        writer.finish();
    }

    for (ReadMode mode : {ReadMode::kMmap, ReadMode::kStream}) {
        auto reader = StoreReader::open(path, mode);
        EXPECT_EQ(store::readByteRows(reader, "bytes"), byte_rows);
        EXPECT_EQ(store::readStringRows(reader, "strings"),
                  string_rows);
        const auto events = store::readEventRows(reader, "events");
        ASSERT_EQ(events.size(), event_rows.size());
        for (size_t i = 0; i < events.size(); ++i) {
            ASSERT_EQ(events[i].size(), event_rows[i].size()) << i;
            for (size_t j = 0; j < events[i].size(); ++j) {
                EXPECT_EQ(events[i][j].start, event_rows[i][j].start);
                EXPECT_EQ(events[i][j].length,
                          event_rows[i][j].length);
                EXPECT_EQ(events[i][j].mean, event_rows[i][j].mean);
                EXPECT_EQ(events[i][j].stdv, event_rows[i][j].stdv);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cache

TEST(StoreCache, BuildOrLoadAndCorruptFallback)
{
    ScratchDir scratch;
    store::ArtifactCache cache(scratch.dir());
    const u64 key = KeyMixer().mix("test/v1").mix(123).value();

    EXPECT_EQ(cache.tryOpen("fam", key), nullptr);
    EXPECT_EQ(cache.misses(), 1u);

    const std::vector<std::vector<u8>> rows{{1, 2, 3}, {4, 5}};
    ASSERT_TRUE(cache.write("fam", key,
                            [&](StoreWriter& writer) {
                                store::addByteRows(
                                    writer, "rows",
                                    std::span<const std::vector<u8>>(
                                        rows));
                            }));

    auto reader = cache.tryOpen("fam", key);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(store::readByteRows(*reader, "rows"), rows);

    // Different key: clean miss.
    EXPECT_EQ(cache.tryOpen("fam", key + 1), nullptr);

    // A file that fails open-time validation is discarded, not fatal.
    const std::string path = cache.pathFor("fam", key);
    std::filesystem::resize_file(path, 32);
    EXPECT_EQ(cache.tryOpen("fam", key), nullptr);
    EXPECT_FALSE(std::filesystem::exists(path));
}

/**
 * Payload corruption is only detectable by the lazy digest checks
 * inside the artifact loaders (open-time validation covers just the
 * header/TOC), so load() must turn that late failure into a
 * discard-and-miss too — a corrupt cache file may never fail a run.
 */
TEST(StoreCache, LoadDiscardsPayloadCorruptFile)
{
    ScratchDir scratch;
    store::ArtifactCache cache(scratch.dir());
    const u64 key = 99;
    const std::vector<std::vector<u8>> rows{{1, 2, 3, 4, 5, 6, 7, 8}};
    ASSERT_TRUE(cache.write("fam", key, [&](StoreWriter& writer) {
        store::addByteRows(writer, "rows",
                           std::span<const std::vector<u8>>(rows));
    }));
    // Damage the first payload byte: the TOC stays valid, so tryOpen
    // alone would hand this file out.
    const std::string path = cache.pathFor("fam", key);
    flipByte(path, store::kAlign);

    bool used = false;
    const bool loaded =
        cache.load("fam", key, [&](const auto& reader) {
            store::readByteRows(*reader, "rows");
            used = true;
        });
    EXPECT_FALSE(loaded);
    EXPECT_FALSE(used);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);

    // The caller rebuilds and re-writes; the next load succeeds.
    ASSERT_TRUE(cache.write("fam", key, [&](StoreWriter& writer) {
        store::addByteRows(writer, "rows",
                           std::span<const std::vector<u8>>(rows));
    }));
    std::vector<std::vector<u8>> reloaded;
    EXPECT_TRUE(cache.load("fam", key, [&](const auto& reader) {
        reloaded = store::readByteRows(*reader, "rows");
    }));
    EXPECT_EQ(reloaded, rows);
}

TEST(StoreCache, DisabledCacheIsInert)
{
    store::ArtifactCache cache;
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.tryOpen("fam", 1), nullptr);
    EXPECT_FALSE(cache.write("fam", 1, [](StoreWriter&) {}));
}

/**
 * Warm-vs-cold identity for the cache-aware kernels: a prepare() that
 * loads from the store must produce bitwise-identical kernel inputs,
 * which taskWork() (a pure function of those inputs) witnesses.
 */
TEST(StoreCache, WarmPrepareMatchesColdPrepare)
{
    ScratchDir scratch;
    for (const char* name : {"fmi", "kmer-cnt", "abea"}) {
        store::setCacheDir(scratch.dir());
        const u64 hits_before = store::globalCache().hits();

        auto cold = createKernel(name);
        cold->prepare(DatasetSize::kTiny);
        const auto cold_work = cold->taskWork();

        auto warm = createKernel(name);
        warm->prepare(DatasetSize::kTiny);
        const auto warm_work = warm->taskWork();

        EXPECT_GT(store::globalCache().hits(), hits_before) << name;
        EXPECT_EQ(warm_work, cold_work) << name;

        // And a cache-disabled prepare agrees too.
        store::setCacheDir("");
        auto plain = createKernel(name);
        plain->prepare(DatasetSize::kTiny);
        EXPECT_EQ(plain->taskWork(), cold_work) << name;
    }
    store::setCacheDir("");
}

} // namespace
} // namespace gb
