/**
 * @file
 * Tests for gb::trace: name interning, ring wrap/drop accounting, the
 * disabled-collector fast path (pinned allocation-free), concurrent
 * recording from ThreadPool workers, and the Chrome trace-event
 * exporter / parser / summarizer round trip.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------
// Global allocation counter. Every `new` in this binary (gtest
// included) funnels through the replaceable global operator, so a test
// can pin a code region as allocation-free by diffing the counter
// around it.

namespace {
std::atomic<unsigned long long> g_allocations{0};
} // namespace

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

// GCC pairs the inlined free() below with its built-in notion of the
// default operator new and reports -Wmismatched-new-delete at -O with
// sanitizers; the replaced operator new above is malloc-based, so the
// pairing is in fact consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace gb::trace {
namespace {

/** start()/stop() guard so every test leaves the collector off. */
struct Collector
{
    explicit Collector(size_t capacity = kDefaultRingCapacity)
    {
        start(capacity);
    }
    ~Collector() { stop(); }
};

TEST(Trace, InternedNamesAreStableNonZero)
{
    const u32 id = internName("test:intern");
    EXPECT_NE(id, 0u);
    EXPECT_EQ(internName("test:intern"), id);
    EXPECT_NE(internName("test:intern-2"), id);
    EXPECT_EQ(nameOf(id), "test:intern");
    EXPECT_EQ(nameOf(0), "?");
    EXPECT_EQ(nameOf(0xffffffffu), "?");
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(categoryName(Category::kServe), "serve");
    EXPECT_STREQ(categoryName(Category::kCache), "cache");
    EXPECT_STREQ(categoryName(Category::kNet), "net");
    EXPECT_STREQ(categoryName(Category::kPool), "pool");
    EXPECT_STREQ(categoryName(Category::kKernel), "kernel");
    EXPECT_STREQ(categoryName(Category::kOther), "other");
}

TEST(Trace, ScopedJobIdSavesAndRestores)
{
    EXPECT_EQ(currentJobId(), 0u);
    {
        ScopedJobId outer(7);
        EXPECT_EQ(currentJobId(), 7u);
        {
            ScopedJobId inner(9);
            EXPECT_EQ(currentJobId(), 9u);
        }
        EXPECT_EQ(currentJobId(), 7u);
    }
    EXPECT_EQ(currentJobId(), 0u);
}

TEST(Trace, RecordsSpansAndInstantsWithContext)
{
    Collector collector;
    const u64 t0 = nowNs();
    {
        ScopedJobId scope(11);
        GB_TRACE_SPAN(Category::kKernel, "unit:span", 7);
        GB_TRACE_INSTANT(Category::kServe, "unit:instant", 9);
    }
    stop();

    const auto events = snapshot();
    ASSERT_EQ(events.size(), 2u);
    // snapshot() sorts by begin time: the span opened first.
    const EventView& span = events[0];
    EXPECT_EQ(span.name, "unit:span");
    EXPECT_EQ(span.category, Category::kKernel);
    EXPECT_FALSE(span.instant);
    EXPECT_GE(span.begin_ns, t0);
    EXPECT_LE(span.begin_ns, span.end_ns);
    EXPECT_EQ(span.job_id, 11u);
    EXPECT_EQ(span.arg, 7u);

    const EventView& instant = events[1];
    EXPECT_EQ(instant.name, "unit:instant");
    EXPECT_EQ(instant.category, Category::kServe);
    EXPECT_TRUE(instant.instant);
    EXPECT_EQ(instant.begin_ns, instant.end_ns);
    EXPECT_EQ(instant.job_id, 11u);
    EXPECT_EQ(instant.arg, 9u);
}

TEST(Trace, RingWrapKeepsNewestAndCountsDrops)
{
    Collector collector(8);
    const u32 id = internName("wrap:event");
    for (u64 i = 0; i < 20; ++i) {
        recordInstant(id, Category::kOther, i);
    }
    stop();

    const Counts c = counts();
    EXPECT_EQ(c.recorded, 20u);
    EXPECT_EQ(c.dropped, 12u);

    // The ring keeps exactly the newest capacity events, in order.
    const auto events = snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg, 12 + i);
    }

    // The exporter reports the loss in otherData.
    std::ostringstream out;
    const ExportStats stats = writeChromeTrace(out);
    EXPECT_EQ(stats.events, 8u);
    EXPECT_EQ(stats.dropped, 12u);
    std::istringstream in(out.str());
    const ParsedTrace trace = parseChromeTrace(in);
    EXPECT_EQ(trace.events.size(), 8u);
    EXPECT_EQ(trace.recorded_events, 20u);
    EXPECT_EQ(trace.dropped_events, 12u);
}

TEST(Trace, DisabledCollectorIsInertAndAllocationFree)
{
    ASSERT_FALSE(enabled());
    const u32 id = internName("disabled:event");
    const Counts before_counts = counts();
    const unsigned long long before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        GB_TRACE_SPAN(Category::kOther, "disabled:span");
        GB_TRACE_INSTANT(Category::kOther, "disabled:instant");
        recordSpan(id, Category::kOther, 1, 2);
        recordInstant(id, Category::kOther);
    }
    const unsigned long long after =
        g_allocations.load(std::memory_order_relaxed);
    const Counts after_counts = counts();
    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(after_counts.recorded, before_counts.recorded);
}

TEST(Trace, EnabledSteadyStateDoesNotAllocate)
{
    Collector collector;
    const u32 span_id = internName("steady:span");
    const u32 instant_id = internName("steady:instant");
    // Warm-up registers this thread's ring; after that, recording is
    // plain stores into it.
    recordInstant(instant_id, Category::kOther);
    const unsigned long long before =
        g_allocations.load(std::memory_order_relaxed);
    for (u64 i = 0; i < 1000; ++i) {
        recordSpan(span_id, Category::kOther, nowNs(), nowNs(), i);
        recordInstant(instant_id, Category::kOther, i);
    }
    const unsigned long long after =
        g_allocations.load(std::memory_order_relaxed);
    stop();
    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(counts().recorded, 2001u);
}

TEST(Trace, SpanGuardConstructedWhileDisabledStaysInert)
{
    ASSERT_FALSE(enabled());
    {
        Span span(internName("inert:span"), Category::kOther);
        // Enabling mid-scope must not arm an already-constructed
        // guard; its destructor records nothing.
        start(64);
    }
    const Counts c = counts();
    stop();
    EXPECT_EQ(c.recorded, 0u);
}

TEST(Trace, ConcurrentPoolWritersAttributeJobId)
{
    Collector collector;
    ThreadPool pool(4);
    {
        ScopedJobId scope(42);
        pool.parallelFor(512, [](u64 i) {
            GB_TRACE_INSTANT(Category::kOther, "pool-test:tick", i);
        });
    }
    stop();

    const Counts c = counts();
    EXPECT_EQ(c.dropped, 0u);
    const auto events = snapshot();
    EXPECT_EQ(events.size(), c.recorded);
    u64 ticks = 0;
    u64 participates = 0;
    u64 participate_indices = 0;
    for (const EventView& ev : events) {
        EXPECT_LE(ev.begin_ns, ev.end_ns);
        if (ev.name == "pool-test:tick") ++ticks;
        if (ev.name == "pool:participate") {
            ++participates;
            participate_indices += ev.arg;
            // Workers record on behalf of the submitting thread's job.
            EXPECT_EQ(ev.job_id, 42u);
        }
    }
    EXPECT_EQ(ticks, 512u);
    EXPECT_GE(participates, 1u);
    EXPECT_EQ(participate_indices, 512u);
}

TEST(Trace, ExporterRoundTripsThroughParser)
{
    Collector collector;
    {
        ScopedJobId scope(7);
        Span span(internName("export:span"), Category::kKernel, 5);
    }
    GB_TRACE_INSTANT(Category::kNet, "export:instant", 3);
    stop();

    std::ostringstream out;
    const ExportStats stats = writeChromeTrace(out);
    EXPECT_EQ(stats.events, 2u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_GE(stats.rings, 1u);

    std::istringstream in(out.str());
    const ParsedTrace trace = parseChromeTrace(in);
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.recorded_events, 2u);
    EXPECT_EQ(trace.dropped_events, 0u);
    EXPECT_EQ(trace.rings, stats.rings);

    const ParsedEvent& span = trace.events[0];
    EXPECT_EQ(span.name, "export:span");
    EXPECT_EQ(span.category, "kernel");
    EXPECT_EQ(span.phase, "X");
    EXPECT_EQ(span.job_id, 7u);
    EXPECT_EQ(span.arg, 5u);

    const ParsedEvent& instant = trace.events[1];
    EXPECT_EQ(instant.name, "export:instant");
    EXPECT_EQ(instant.category, "net");
    EXPECT_EQ(instant.phase, "i");
    EXPECT_EQ(instant.arg, 3u);
    EXPECT_EQ(instant.dur_us, 0.0);

    // Process metadata plus one thread_name entry per ring.
    u64 process_names = 0;
    u64 thread_names = 0;
    for (const ParsedEvent& ev : trace.metadata) {
        EXPECT_EQ(ev.phase, "M");
        if (ev.name == "process_name") ++process_names;
        if (ev.name == "thread_name") ++thread_names;
    }
    EXPECT_EQ(process_names, 1u);
    EXPECT_EQ(thread_names, stats.rings);
}

TEST(Trace, FileExportAndParseRoundTrip)
{
    Collector collector;
    GB_TRACE_INSTANT(Category::kOther, "file:instant");
    stop();

    const std::string path =
        (std::filesystem::temp_directory_path() / "gb_test_trace.json")
            .string();
    const ExportStats stats = writeChromeTraceFile(path);
    EXPECT_EQ(stats.events, 1u);
    const ParsedTrace trace = parseChromeTraceFile(path);
    ASSERT_EQ(trace.events.size(), 1u);
    EXPECT_EQ(trace.events[0].name, "file:instant");
    std::filesystem::remove(path);

    EXPECT_THROW(writeChromeTraceFile("/nonexistent-gb-dir/t.json"),
                 InputError);
    EXPECT_THROW(parseChromeTraceFile(path), InputError); // removed
}

TEST(Trace, ParserRejectsMalformedDocuments)
{
    const auto parse = [](const std::string& text) {
        std::istringstream in(text);
        return parseChromeTrace(in);
    };
    EXPECT_THROW(parse("not json"), InputError);
    EXPECT_THROW(parse("[]"), InputError); // not an object
    EXPECT_THROW(parse("{}"), InputError); // no traceEvents
    EXPECT_THROW(parse("{\"traceEvents\": 5}"), InputError);
    EXPECT_THROW(parse("{\"traceEvents\": ["), InputError); // truncated
    EXPECT_THROW(parse("{\"traceEvents\": [{\"name\":\"x\"}]}"),
                 InputError); // missing ph
    EXPECT_THROW(parse("{} trailing"), InputError);
    EXPECT_THROW(parse("{\"a\": \"\\u12\"}"), InputError);
}

TEST(Trace, ParserHandlesEscapesAndNumbers)
{
    std::istringstream in(
        "{\"traceEvents\": [{\"name\":\"a\\\"b\\u0041\",\"cat\":\"x\","
        "\"ph\":\"i\",\"ts\":12.5,\"tid\":3,"
        "\"args\":{\"job\":9,\"arg\":2,\"rank\":1}}],"
        "\"otherData\":{\"rings\":1,\"recorded_events\":1,"
        "\"dropped_events\":0}}");
    const ParsedTrace trace = parseChromeTrace(in);
    ASSERT_EQ(trace.events.size(), 1u);
    EXPECT_EQ(trace.events[0].name, "a\"bA");
    EXPECT_DOUBLE_EQ(trace.events[0].ts_us, 12.5);
    EXPECT_EQ(trace.events[0].tid, 3u);
    EXPECT_EQ(trace.events[0].job_id, 9u);
    EXPECT_EQ(trace.events[0].rank, 1u);
}

TEST(Trace, SummarizeAggregatesSpans)
{
    const auto span = [](const char* name, const char* cat, double ts,
                         double dur) {
        ParsedEvent ev;
        ev.name = name;
        ev.category = cat;
        ev.phase = "X";
        ev.ts_us = ts;
        ev.dur_us = dur;
        return ev;
    };
    ParsedTrace trace;
    trace.events.push_back(span("a", "kernel", 0.0, 10.0));
    trace.events.push_back(span("a", "kernel", 50.0, 20.0));
    trace.events.push_back(span("b", "serve", 5.0, 5.0));
    ParsedEvent instant;
    instant.name = "tick";
    instant.category = "net";
    instant.phase = "i";
    instant.ts_us = 1.0;
    trace.events.push_back(instant);
    trace.dropped_events = 3;
    trace.rings = 2;

    const InspectSummary s = summarize(trace, 2);
    EXPECT_EQ(s.spans, 3u);
    EXPECT_EQ(s.instants, 1u);
    EXPECT_EQ(s.dropped_events, 3u);
    EXPECT_EQ(s.rings, 2u);
    EXPECT_DOUBLE_EQ(s.extent_us, 70.0); // first begin 0, last end 70

    ASSERT_EQ(s.by_name.size(), 2u); // sorted by total desc
    EXPECT_EQ(s.by_name[0].name, "a");
    EXPECT_EQ(s.by_name[0].count, 2u);
    EXPECT_DOUBLE_EQ(s.by_name[0].total_us, 30.0);
    EXPECT_DOUBLE_EQ(s.by_name[0].max_us, 20.0);
    EXPECT_EQ(s.by_name[1].name, "b");

    ASSERT_EQ(s.by_category.size(), 2u);
    EXPECT_EQ(s.by_category[0].category, "kernel");
    EXPECT_EQ(s.by_category[0].count, 2u);
    EXPECT_EQ(s.by_category[1].category, "serve");

    ASSERT_EQ(s.longest.size(), 2u); // top_n honored
    EXPECT_DOUBLE_EQ(s.longest[0].dur_us, 20.0);
    EXPECT_DOUBLE_EQ(s.longest[1].dur_us, 10.0);
}

} // namespace
} // namespace gb::trace
