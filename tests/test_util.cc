/**
 * @file
 * Unit tests for the util module: RNG, stats, thread pool, tables.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace gb {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<i64> seen;
    for (int i = 0; i < 5'000; ++i) {
        const i64 v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 20'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 50'000; ++i) s.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, GeometricMean)
{
    Rng rng(15);
    double sum = 0;
    const double p = 0.25;
    for (int i = 0; i < 50'000; ++i) {
        sum += static_cast<double>(rng.geometric(p));
    }
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / 50'000, 3.0, 0.15);
}

TEST(Rng, SplitIndependent)
{
    Rng parent(21);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(RunningStats, Basics)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(s.imbalance(), 4.0 / 2.5);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(31);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(0, 1);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeEmpty)
{
    RunningStats a;
    RunningStats b;
    b.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    RunningStats c;
    a.merge(c);
    EXPECT_EQ(a.count(), 1u);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, Empty)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleSample)
{
    std::vector<double> v{7.5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 7.5);
}

TEST(Percentile, TwoSamplesInterpolate)
{
    std::vector<double> v{20.0, 10.0}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 15.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 12.5);
}

TEST(Percentile, UnsortedInputAndExtremes)
{
    std::vector<double> v{9, 1, 5, 3, 7, 2, 8, 4, 6, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
    // nth_element reorders in place; the result set is unchanged.
    EXPECT_DOUBLE_EQ(
        std::accumulate(v.begin(), v.end(), 0.0), 55.0);
    EXPECT_DOUBLE_EQ(percentile(v, 90), 9.1);
}

TEST(LogHistogram, BinsPowersOfTwo)
{
    LogHistogram h(2.0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(1024);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binOf(1), 0);
    EXPECT_EQ(h.binOf(2), 1);
    EXPECT_EQ(h.binOf(3), 1);
    EXPECT_EQ(h.binOf(1024), 10);
    u64 sum = 0;
    for (u64 c : h.counts()) sum += c;
    EXPECT_EQ(sum, 4u);
}

TEST(LogHistogram, SubUnitValuesClampToBinZero)
{
    LogHistogram h(2.0);
    h.add(0.25);
    h.add(0.0);
    EXPECT_EQ(h.binOf(0.5), 0);
    EXPECT_EQ(h.minBin(), 0);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.counts()[0], 2u);
}

TEST(LogHistogram, MixedMagnitudesKeepTotal)
{
    LogHistogram h(10.0);
    for (double v : {1.0, 9.0, 10.5, 99.0, 2e6}) h.add(v);
    u64 sum = 0;
    for (u64 c : h.counts()) sum += c;
    EXPECT_EQ(sum, 5u);
    EXPECT_EQ(h.binOf(99.0), 1);
    // Exact powers of the base may fall either side of the boundary
    // (floating-point log); test an interior value instead.
    EXPECT_EQ(h.binOf(2e6), 6);
}

TEST(LogHistogram, QuantileOfEmptyIsZero)
{
    LogHistogram h(2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(LogHistogram, QuantileInterpolatesWithinSingleBin)
{
    LogHistogram h(2.0);
    for (int i = 0; i < 4; ++i) h.add(1.0); // all in bin 0 = [1, 2)
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // bin lower edge
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);  // uniform-in-bin midpoint
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);  // bin upper edge
    // Out-of-range q clamps rather than extrapolating.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0), 2.0);
}

TEST(LogHistogram, QuantileInterpolatesAcrossBins)
{
    LogHistogram h(2.0);
    for (double v : {1.0, 2.0, 4.0, 8.0}) h.add(v); // bins 0..3, 1 each
    // target 2.4 samples: 1 in bin 0, 1 in bin 1, then 0.4 of bin 2's
    // single sample -> 4 + 0.4 * (8 - 4).
    EXPECT_DOUBLE_EQ(h.quantile(0.6), 5.6);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0); // exactly exhausts bin 1
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 16.0); // top edge of last bin
}

TEST(LogHistogram, MergeMatchesCombinedStream)
{
    // Different magnitude ranges so the merge has to extend the bin
    // range on both sides of the destination.
    const std::vector<double> a{100.0, 300.0, 5000.0};
    const std::vector<double> b{0.5, 3.0, 7.0, 20.0};
    LogHistogram ha(2.0), hb(2.0), combined(2.0);
    for (double v : a) { ha.add(v); combined.add(v); }
    for (double v : b) { hb.add(v); combined.add(v); }
    ha.merge(hb);
    EXPECT_EQ(ha.total(), combined.total());
    EXPECT_EQ(ha.minBin(), combined.minBin());
    EXPECT_EQ(ha.counts(), combined.counts());
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(ha.quantile(q), combined.quantile(q)) << q;
    }
}

TEST(LogHistogram, MergeEmptyEdgeCases)
{
    LogHistogram h(2.0);
    h.add(3.0);
    LogHistogram empty(2.0);
    h.merge(empty); // no-op
    EXPECT_EQ(h.total(), 1u);
    empty.merge(h); // adopts
    EXPECT_EQ(empty.total(), 1u);
    EXPECT_EQ(empty.counts(), h.counts());
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), h.quantile(0.5));
}

TEST(LogHistogram, MergeRejectsBaseMismatch)
{
    LogHistogram a(2.0);
    LogHistogram b(1.15);
    a.add(1.0);
    b.add(1.0);
    EXPECT_THROW(a.merge(b), InputError);
}

TEST(SerialFor, VisitsAllInOrder)
{
    std::vector<u64> seen;
    serialFor(5, [&](u64 i) { seen.push_back(i); });
    const std::vector<u64> expected{0, 1, 2, 3, 4};
    EXPECT_EQ(seen, expected);
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(formatF(1.23456, 2), "1.23");
    EXPECT_EQ(formatF(-0.5, 1), "-0.5");
    EXPECT_EQ(formatF(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllIndices)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](u64 i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<u64> sum{0};
        pool.parallelFor(100, [&](u64 i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, SingleThreadFallback)
{
    ThreadPool pool(1);
    u64 sum = 0; // no atomics needed with one thread
    pool.parallelFor(100, [&](u64 i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, RankedBodySeesValidRanks)
{
    ThreadPool pool(4);
    std::atomic<int> bad{0};
    pool.parallelForRanked(500, [&](u64, unsigned rank) {
        if (rank >= 4) bad.fetch_add(1);
    });
    EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, PropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](u64 i) {
                             if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // Pool still usable afterwards.
    std::atomic<u64> n{0};
    pool.parallelFor(10, [&](u64) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 10u);
}

TEST(ThreadPool, BackToBackAfterThrow)
{
    // Stress the generation handshake: a parallelFor that throws must
    // leave the pool immediately reusable, round after round.
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(
            pool.parallelFor(200,
                             [&](u64 i) {
                                 if (i % 50 == 7) {
                                     throw std::runtime_error("boom");
                                 }
                             }),
            std::runtime_error);
        std::atomic<u64> sum{0};
        pool.parallelFor(100, [&](u64 i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u) << "round " << round;
    }
}

TEST(ThreadPool, TelemetryConsistency)
{
    // Scheduler-telemetry invariant: across ranks, claimed chunks sum
    // to ceilDiv(n, grain) and executed indices sum to n.
    ThreadPool pool(4);
    const u64 n = 1000;
    const u64 grain = 7;
    pool.resetTelemetry();
    pool.parallelForRanked(n, [](u64, unsigned) {}, grain);
    const auto ranks = pool.telemetry();
    ASSERT_EQ(ranks.size(), 4u);
    u64 chunks = 0;
    u64 indices = 0;
    for (const auto& t : ranks) {
        chunks += t.chunks;
        indices += t.indices;
        EXPECT_GE(t.busy_seconds, 0.0);
        EXPECT_GE(t.wait_seconds, 0.0);
        EXPECT_EQ(t.jobs, 1u);
    }
    EXPECT_EQ(chunks, ceilDiv(n, grain));
    EXPECT_EQ(indices, n);
}

TEST(ThreadPool, TelemetryFastPathMatchesScheduledAccounting)
{
    // The 1-thread inline path must keep the same chunk invariant so
    // consumers (bench_fig4/fig7) need no special cases.
    ThreadPool pool(1);
    pool.resetTelemetry();
    pool.parallelFor(10, [](u64) {}, 3);
    const auto ranks = pool.telemetry();
    ASSERT_EQ(ranks.size(), 1u);
    EXPECT_EQ(ranks[0].chunks, ceilDiv(u64{10}, u64{3}));
    EXPECT_EQ(ranks[0].indices, 10u);
    EXPECT_EQ(ranks[0].jobs, 1u);
}

TEST(ThreadPool, TelemetryAccumulatesAndResets)
{
    ThreadPool pool(2);
    pool.resetTelemetry();
    pool.parallelFor(64, [](u64) {});
    pool.parallelFor(64, [](u64) {});
    u64 indices = 0;
    u64 jobs = 0;
    for (const auto& t : pool.telemetry()) {
        indices += t.indices;
        jobs += t.jobs;
    }
    EXPECT_EQ(indices, 128u);
    EXPECT_EQ(jobs, 4u); // 2 ranks x 2 jobs
    pool.resetTelemetry();
    for (const auto& t : pool.telemetry()) {
        EXPECT_EQ(t.indices, 0u);
        EXPECT_EQ(t.chunks, 0u);
        EXPECT_EQ(t.jobs, 0u);
        EXPECT_DOUBLE_EQ(t.busy_seconds, 0.0);
        EXPECT_DOUBLE_EQ(t.wait_seconds, 0.0);
    }
}

TEST(ThreadPool, ZeroIterations)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](u64) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, GrainLargerThanN)
{
    ThreadPool pool(4);
    std::atomic<u64> n{0};
    pool.parallelFor(5, [&](u64) { n.fetch_add(1); }, 100);
    EXPECT_EQ(n.load(), 5u);
}

TEST(ThreadPool, StealPolicyRunsAllIndices)
{
    ThreadPool pool(4);
    pool.setSchedule(SchedulePolicy::kSteal);
    std::vector<std::atomic<int>> hits(10000);
    pool.parallelFor(10000, [&](u64 i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StealPolicyPropagatesException)
{
    ThreadPool pool(4);
    pool.setSchedule(SchedulePolicy::kSteal);
    for (int round = 0; round < 10; ++round) {
        EXPECT_THROW(
            pool.parallelFor(5000,
                             [&](u64 i) {
                                 if (i % 1000 == 500) {
                                     throw std::runtime_error("boom");
                                 }
                             }),
            std::runtime_error);
        std::atomic<u64> sum{0};
        pool.parallelFor(100, [&](u64 i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u) << "round " << round;
    }
}

TEST(ThreadPool, SchedulerStressBothPolicies)
{
    // Randomized cross-policy stress (docs/threading.md): every
    // (policy, threads, n, grain) combination must execute each index
    // exactly once — including skewed bodies that force the steal path
    // to rebalance — and satisfy the per-policy telemetry invariants:
    // indices sums to n under both, steals stays 0 under kDynamic, and
    // the dynamic scheduled path claims exactly ceilDiv(n, grain)
    // chunks.
    Rng rng(20260808);
    const SchedulePolicy policies[] = {SchedulePolicy::kDynamic,
                                       SchedulePolicy::kSteal};
    for (unsigned threads : {2u, 4u, 8u}) {
        ThreadPool pool(threads);
        for (const SchedulePolicy policy : policies) {
            pool.setSchedule(policy);
            const u64 sizes[] = {0, 1, threads - 1, 10000};
            for (const u64 n : sizes) {
                for (const u64 grain : {u64{1}, u64{8}, u64{64}}) {
                    // Skewed work: a random ~1% of indices spin ~300x
                    // longer, so static range splits are unbalanced
                    // and the steal path has to move work.
                    const u64 heavy_stride =
                        n ? 1 + rng.below(99) : 1;
                    std::vector<std::atomic<int>> hits(n);
                    pool.resetTelemetry();
                    pool.parallelFor(
                        n,
                        [&](u64 i) {
                            hits[i].fetch_add(1);
                            volatile u64 h = i;
                            const u64 spins =
                                i % 100 == heavy_stride ? 300 : 1;
                            for (u64 s = 0; s < spins; ++s) {
                                h = h * 0x9e3779b97f4a7c15ULL + s;
                            }
                        },
                        grain);
                    const std::string ctx =
                        std::string("policy=") +
                        schedulePolicyName(policy) +
                        " threads=" + std::to_string(threads) +
                        " n=" + std::to_string(n) +
                        " grain=" + std::to_string(grain);
                    for (u64 i = 0; i < n; ++i) {
                        ASSERT_EQ(hits[i].load(), 1)
                            << ctx << " index " << i;
                    }
                    u64 indices = 0;
                    u64 chunks = 0;
                    u64 steals = 0;
                    for (const auto& t : pool.telemetry()) {
                        indices += t.indices;
                        chunks += t.chunks;
                        steals += t.steals;
                    }
                    EXPECT_EQ(indices, n) << ctx;
                    if (policy == SchedulePolicy::kDynamic) {
                        EXPECT_EQ(steals, 0u) << ctx;
                        if (n > 0) {
                            EXPECT_EQ(chunks, ceilDiv(n, grain))
                                << ctx;
                        }
                    } else if (n > 0) {
                        // Range claims, not grain chunks: at least one
                        // claim happened, never more than the dynamic
                        // schedule would make.
                        EXPECT_GE(chunks, 1u) << ctx;
                        EXPECT_LE(chunks, ceilDiv(n, grain)) << ctx;
                    }
                }
            }
        }
    }
}

TEST(ThreadPool, SchedulerStressThrowingBodies)
{
    // First-exception-wins, no deadlock, immediate reuse — both
    // policies, random throwing index each round.
    Rng rng(977);
    for (const SchedulePolicy policy :
         {SchedulePolicy::kDynamic, SchedulePolicy::kSteal}) {
        ThreadPool pool(4);
        pool.setSchedule(policy);
        for (int round = 0; round < 15; ++round) {
            const u64 n = 2000;
            const u64 bad = rng.below(n);
            try {
                pool.parallelFor(
                    n,
                    [&](u64 i) {
                        if (i == bad) {
                            throw std::runtime_error(
                                "boom@" + std::to_string(i));
                        }
                    },
                    1 + rng.below(16));
                FAIL() << "exception did not propagate";
            } catch (const std::runtime_error& e) {
                // First exception wins; with one throwing index the
                // winner is deterministic.
                EXPECT_EQ(std::string(e.what()),
                          "boom@" + std::to_string(bad));
            }
            // Pool must be immediately reusable after the drain.
            std::atomic<u64> count{0};
            pool.parallelFor(64, [&](u64) { count.fetch_add(1); });
            EXPECT_EQ(count.load(), 64u);
        }
    }
}

TEST(ThreadPool, StealTelemetryCountsSteals)
{
    // A skewed loop on >1 threads should eventually record at least
    // one steal under kSteal; under kDynamic the counter must stay 0
    // no matter what. (Steals are timing-dependent, so loop until one
    // is seen rather than asserting a single run.)
    ThreadPool pool(4);
    pool.setSchedule(SchedulePolicy::kSteal);
    pool.resetTelemetry();
    u64 steals = 0;
    for (int attempt = 0; attempt < 50 && steals == 0; ++attempt) {
        pool.parallelFor(
            4096,
            [](u64 i) {
                // Front-loaded skew: rank 0's static share is heavy.
                volatile u64 h = i;
                const u64 spins = i < 512 ? 400 : 1;
                for (u64 s = 0; s < spins; ++s) {
                    h = h * 0x9e3779b97f4a7c15ULL + s;
                }
            },
            1);
        steals = 0;
        for (const auto& t : pool.telemetry()) steals += t.steals;
    }
    EXPECT_GT(steals, 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.newRow().cell("alpha").cellF(1.5, 1);
    t.newRow().cell("b").cell(42);
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Format, Count)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

} // namespace
} // namespace gb
