/**
 * @file
 * genomicsbench — command-line driver for the suite.
 *
 *   genomicsbench list
 *   genomicsbench info <kernel>
 *   genomicsbench run <kernel> [--size=S] [--threads=N] [--repeat=R]
 *   genomicsbench characterize <kernel> [--size=S]
 *
 * `run` times the kernel (wall clock, tasks/s); `characterize` prints
 * the operation mix, cache behaviour and top-down attribution for one
 * kernel — the per-kernel view of what the bench_* binaries sweep.
 */
#include <cstring>
#include <iostream>
#include <string>

#include "arch/cache_sim.h"
#include "arch/topdown.h"
#include "core/benchmark.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gb;

int
usage()
{
    std::cerr
        << "usage:\n"
           "  genomicsbench list\n"
           "  genomicsbench info <kernel>\n"
           "  genomicsbench run <kernel> [--size=tiny|small|large]"
           " [--threads=N] [--repeat=R]\n"
           "  genomicsbench characterize <kernel>"
           " [--size=tiny|small|large]\n";
    return 2;
}

DatasetSize
parseSize(const std::string& value)
{
    if (value == "tiny") return DatasetSize::kTiny;
    if (value == "small") return DatasetSize::kSmall;
    if (value == "large") return DatasetSize::kLarge;
    throw InputError("unknown size: " + value);
}

int
cmdList()
{
    Table table("GenomicsBench kernels");
    table.setHeader({"kernel", "source tool", "motif", "target"});
    for (const auto& name : kernelNames()) {
        const auto kernel = createKernel(name);
        const auto& info = kernel->info();
        table.newRow()
            .cell(info.name)
            .cell(info.source_tool)
            .cell(info.motif)
            .cell(info.gpu ? "GPU" : "CPU");
    }
    table.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string& name)
{
    const auto kernel = createKernel(name);
    const auto& info = kernel->info();
    std::cout << "kernel:       " << info.name << '\n'
              << "source tool:  " << info.source_tool << '\n'
              << "motif:        " << info.motif << '\n'
              << "granularity:  " << info.granularity << '\n'
              << "work unit:    " << info.work_unit << '\n'
              << "compute:      "
              << (info.regular ? "regular" : "irregular") << '\n'
              << "paper target: " << (info.gpu ? "GPU" : "CPU")
              << '\n';
    return 0;
}

int
cmdRun(const std::string& name, DatasetSize size, unsigned threads,
       unsigned repeat)
{
    auto kernel = createKernel(name);
    WallTimer prep_timer;
    kernel->prepare(size);
    std::cout << "prepared in " << formatF(prep_timer.seconds(), 2)
              << " s\n";

    ThreadPool pool(threads);
    double best = 1e300;
    u64 tasks = 0;
    for (unsigned r = 0; r < repeat; ++r) {
        WallTimer timer;
        tasks = kernel->run(pool);
        const double seconds = timer.seconds();
        best = std::min(best, seconds);
        std::cout << "run " << r + 1 << ": "
                  << formatF(seconds, 3) << " s, " << tasks
                  << " tasks ("
                  << formatF(static_cast<double>(tasks) / seconds, 1)
                  << " tasks/s)\n";
    }
    std::cout << "best: " << formatF(best, 3) << " s with "
              << pool.numThreads() << " threads\n";
    return 0;
}

int
cmdCharacterize(const std::string& name, DatasetSize size)
{
    auto kernel = createKernel(name);
    kernel->prepare(size);

    CacheSim cache;
    CharProbe probe(&cache);
    WallTimer timer;
    const u64 tasks = kernel->characterize(probe);
    std::cout << "characterized " << tasks << " tasks in "
              << formatF(timer.seconds(), 2) << " s (simulated)\n\n";

    const OpCounts& counts = probe.counts();
    Table mix("Operation mix");
    mix.setHeader({"class", "count", "fraction"});
    for (OpClass c :
         {OpClass::kIntAlu, OpClass::kFpAlu, OpClass::kVecAlu,
          OpClass::kLoad, OpClass::kStore, OpClass::kBranch}) {
        mix.newRow()
            .cell(opClassName(c))
            .cell(formatCount(counts[c]))
            .cellF(counts.fraction(c) * 100.0, 1);
    }
    mix.print(std::cout);

    Table mem("Memory behaviour");
    mem.setHeader({"metric", "value"});
    mem.newRow().cell("L1 miss rate").cellF(
        cache.l1Stats().missRate() * 100.0, 2);
    mem.newRow().cell("L2 miss rate").cellF(
        cache.l2Stats().missRate() * 100.0, 2);
    mem.newRow().cell("LLC miss rate").cellF(
        cache.llcStats().missRate() * 100.0, 2);
    mem.newRow().cell("DRAM bytes").cell(
        formatCount(cache.dramStats().bytes));
    mem.newRow().cell("DRAM row-miss rate").cellF(
        cache.dramStats().rowMissRate() * 100.0, 1);
    mem.newRow().cell("BPKI").cellF(
        static_cast<double>(cache.dramStats().bytes) /
            (static_cast<double>(counts.total()) / 1000.0),
        2);
    mem.print(std::cout);

    const auto td = topDownAnalyze(counts, cache, probe.mispredicts());
    Table topdown("Top-down attribution");
    topdown.setHeader({"slot class", "percent"});
    topdown.newRow().cell("retiring").cellF(td.retiring * 100.0, 1);
    topdown.newRow().cell("front-end").cellF(
        td.frontend_bound * 100.0, 1);
    topdown.newRow().cell("bad speculation").cellF(
        td.bad_speculation * 100.0, 1);
    topdown.newRow().cell("memory bound").cellF(
        td.backend_memory * 100.0, 1);
    topdown.newRow().cell("core bound").cellF(
        td.backend_core * 100.0, 1);
    topdown.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "list") return cmdList();
        if (argc < 3) return usage();
        const std::string kernel = argv[2];

        DatasetSize size = DatasetSize::kSmall;
        unsigned threads = 0;
        unsigned repeat = 3;
        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--size=", 0) == 0) {
                size = parseSize(arg.substr(7));
            } else if (arg.rfind("--threads=", 0) == 0) {
                threads = static_cast<unsigned>(
                    std::stoul(arg.substr(10)));
            } else if (arg.rfind("--repeat=", 0) == 0) {
                repeat = static_cast<unsigned>(
                    std::stoul(arg.substr(9)));
            } else {
                return usage();
            }
        }

        if (command == "info") return cmdInfo(kernel);
        if (command == "run") {
            return cmdRun(kernel, size, threads, repeat);
        }
        if (command == "characterize") {
            return cmdCharacterize(kernel, size);
        }
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
