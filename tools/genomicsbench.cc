/**
 * @file
 * genomicsbench — command-line driver for the suite.
 *
 *   genomicsbench list
 *   genomicsbench info <kernel>
 *   genomicsbench run <kernel> [--size=S] [--threads=N] [--repeat=R]
 *                    [--schedule=dynamic|steal] [--cache-dir=DIR]
 *   genomicsbench characterize <kernel> [--size=S] [--cache-dir=DIR]
 *   genomicsbench store build [--cache-dir=DIR] [--size=S]
 *                    [--kernels=a,b,c]
 *   genomicsbench store inspect <file.gbs>
 *   genomicsbench store verify <file.gbs>... | --cache-dir=DIR
 *   genomicsbench serve --jobs=FILE [--workers=N]
 *                    [--queue-depth=K] [--schedule=dynamic|steal]
 *                    [--cache-dir=DIR] [--json=FILE]
 *
 * `run` times the kernel (wall clock, tasks/s); `characterize` prints
 * the operation mix, cache behaviour and top-down attribution for one
 * kernel — the per-kernel view of what the bench_* binaries sweep.
 * The `store` subcommands manage the gb::store artifact cache that
 * --cache-dir consults (see docs/store-format.md). `serve` runs a
 * whole job list through the gb::serve scheduler (docs/serve.md).
 */
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/cache_sim.h"
#include "arch/topdown.h"
#include "core/benchmark.h"
#include "metrics/metrics_sink.h"
#include "metrics/perf_counters.h"
#include "metrics/pooled_counters.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "simd/simd.h"
#include "store/cache.h"
#include "store/container.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gb;

/** Armed by --json=FILE; rows are dropped until then. */
metrics::MetricsSink g_sink;

/** Print a table and mirror its rows into the metrics sink. */
void
report(const Table& table)
{
    table.print(std::cout);
    metrics::emitTable(g_sink, table);
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  genomicsbench list\n"
           "  genomicsbench info <kernel>\n"
           "  genomicsbench run <kernel> [--size=tiny|small|large]"
           " [--threads=N] [--repeat=R] [--engine=scalar|simd]"
           " [--schedule=dynamic|steal] [--cache-dir=DIR]"
           " [--json=FILE]\n"
           "  genomicsbench characterize <kernel>"
           " [--size=tiny|small|large] [--cache-dir=DIR]"
           " [--json=FILE]\n"
           "  genomicsbench store build [--cache-dir=DIR]"
           " [--size=S] [--kernels=a,b,c]\n"
           "  genomicsbench store inspect <file.gbs>\n"
           "  genomicsbench store verify <file.gbs>... |"
           " --cache-dir=DIR\n"
           "  genomicsbench serve --jobs=FILE [--workers=N]"
           " [--queue-depth=K] [--schedule=dynamic|steal]"
           " [--cache-dir=DIR] [--json=FILE]\n";
    return 2;
}

DatasetSize
parseSize(const std::string& value)
{
    if (value == "tiny") return DatasetSize::kTiny;
    if (value == "small") return DatasetSize::kSmall;
    if (value == "large") return DatasetSize::kLarge;
    throw InputError("unknown size: " + value);
}

int
cmdList()
{
    Table table("GenomicsBench kernels");
    table.setHeader({"kernel", "source tool", "motif", "target"});
    for (const auto& name : kernelNames()) {
        const auto kernel = createKernel(name);
        const auto& info = kernel->info();
        table.newRow()
            .cell(info.name)
            .cell(info.source_tool)
            .cell(info.motif)
            .cell(info.gpu ? "GPU" : "CPU");
    }
    table.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string& name)
{
    const auto kernel = createKernel(name);
    const auto& info = kernel->info();
    std::cout << "kernel:       " << info.name << '\n'
              << "source tool:  " << info.source_tool << '\n'
              << "motif:        " << info.motif << '\n'
              << "granularity:  " << info.granularity << '\n'
              << "work unit:    " << info.work_unit << '\n'
              << "compute:      "
              << (info.regular ? "regular" : "irregular") << '\n'
              << "paper target: " << (info.gpu ? "GPU" : "CPU")
              << '\n';
    return 0;
}

int
cmdRun(const std::string& name, DatasetSize size, unsigned threads,
       unsigned repeat, Engine engine, SchedulePolicy schedule)
{
    auto kernel = createKernel(name);
    kernel->setEngine(engine);
    WallTimer prep_timer;
    kernel->prepare(size);
    std::cout << "prepared in " << formatF(prep_timer.seconds(), 2)
              << " s";
    const auto& cache = store::globalCache();
    if (cache.enabled()) {
        std::cout << " (artifact cache: " << cache.hits() << " hit"
                  << (cache.hits() == 1 ? "" : "s") << ", "
                  << cache.misses() << " miss"
                  << (cache.misses() == 1 ? "" : "es") << ")";
    }
    std::cout << '\n';

    ThreadPool pool(threads);
    pool.setSchedule(schedule);
    // One counter group per pool thread, summed per repeat, so the
    // reported counters cover the whole run at any thread count.
    metrics::PooledCounters counters(pool);
    double best = 1e300;
    u64 tasks = 0;
    metrics::PerfSample best_sample;
    for (unsigned r = 0; r < repeat; ++r) {
        WallTimer timer;
        counters.start();
        tasks = kernel->run(pool);
        const auto sample = counters.stopAggregate();
        const double seconds = timer.seconds();
        if (seconds < best) {
            best = seconds;
            best_sample = sample;
        }
        std::cout << "run " << r + 1 << ": "
                  << formatF(seconds, 3) << " s, " << tasks
                  << " tasks ("
                  << formatF(static_cast<double>(tasks) / seconds, 1)
                  << " tasks/s)\n";
        g_sink.newRow("run")
            .str("kernel", name)
            .str("schedule", schedulePolicyName(schedule))
            .count("repeat", r + 1)
            .num("seconds", seconds)
            .count("tasks", tasks)
            .num("tasks_per_sec",
                 static_cast<double>(tasks) / seconds);
    }
    std::cout << "best: " << formatF(best, 3) << " s with "
              << pool.numThreads() << " threads\n";
    // Measured counters for the best repeat, aggregated across every
    // pool rank (one perf group per thread).
    if (best_sample.available) {
        // Individual counters can still be missing (negative).
        const auto fmt = [](double v) {
            return v < 0.0 ? std::string("n/a")
                           : formatCount(static_cast<u64>(v));
        };
        std::cout << "counters (whole run, " << counters.ranks()
                  << (counters.ranks() == 1 ? " rank" : " ranks")
                  << "): ipc " << formatF(best_sample.ipc(), 2)
                  << ", cycles " << fmt(best_sample.cycles)
                  << ", LLC misses " << fmt(best_sample.llc_misses)
                  << ", branch misses "
                  << fmt(best_sample.branch_misses) << '\n';
    } else {
        std::cout << "counters unavailable ("
                  << best_sample.unavailable_reason << ")\n";
    }
    g_sink.newRow("run_best")
        .str("kernel", name)
        .str("schedule", schedulePolicyName(schedule))
        .num("seconds", best)
        .count("threads", pool.numThreads())
        .flag("counters_available", best_sample.available)
        .num("ipc", best_sample.ipc())
        .num("cycles", best_sample.cycles)
        .num("instructions", best_sample.instructions)
        .num("llc_misses", best_sample.llc_misses)
        .num("branch_misses", best_sample.branch_misses);
    return 0;
}

int
cmdCharacterize(const std::string& name, DatasetSize size)
{
    auto kernel = createKernel(name);
    kernel->prepare(size);

    CacheSim cache;
    CharProbe probe(&cache);
    WallTimer timer;
    const u64 tasks = kernel->characterize(probe);
    std::cout << "characterized " << tasks << " tasks in "
              << formatF(timer.seconds(), 2) << " s (simulated)\n\n";

    const OpCounts& counts = probe.counts();
    Table mix("Operation mix");
    mix.setHeader({"class", "count", "fraction"});
    for (OpClass c :
         {OpClass::kIntAlu, OpClass::kFpAlu, OpClass::kVecAlu,
          OpClass::kLoad, OpClass::kStore, OpClass::kBranch}) {
        mix.newRow()
            .cell(opClassName(c))
            .cell(formatCount(counts[c]))
            .cellF(counts.fraction(c) * 100.0, 1);
    }
    report(mix);

    Table mem("Memory behaviour");
    mem.setHeader({"metric", "value"});
    mem.newRow().cell("L1 miss rate").cellF(
        cache.l1Stats().missRate() * 100.0, 2);
    mem.newRow().cell("L2 miss rate").cellF(
        cache.l2Stats().missRate() * 100.0, 2);
    mem.newRow().cell("LLC miss rate").cellF(
        cache.llcStats().missRate() * 100.0, 2);
    mem.newRow().cell("DRAM bytes").cell(
        formatCount(cache.dramStats().bytes));
    mem.newRow().cell("DRAM row-miss rate").cellF(
        cache.dramStats().rowMissRate() * 100.0, 1);
    mem.newRow().cell("BPKI").cellF(
        static_cast<double>(cache.dramStats().bytes) /
            (static_cast<double>(counts.total()) / 1000.0),
        2);
    report(mem);

    const auto td = topDownAnalyze(counts, cache, probe.mispredicts());
    Table topdown("Top-down attribution");
    topdown.setHeader({"slot class", "percent"});
    topdown.newRow().cell("retiring").cellF(td.retiring * 100.0, 1);
    topdown.newRow().cell("front-end").cellF(
        td.frontend_bound * 100.0, 1);
    topdown.newRow().cell("bad speculation").cellF(
        td.bad_speculation * 100.0, 1);
    topdown.newRow().cell("memory bound").cellF(
        td.backend_memory * 100.0, 1);
    topdown.newRow().cell("core bound").cellF(
        td.backend_core * 100.0, 1);
    report(topdown);
    return 0;
}

/**
 * `store build`: run prepare() for the selected kernels with the
 * cache enabled, so every cache-aware artifact is materialized.
 */
int
cmdStoreBuild(const std::vector<std::string>& kernels, DatasetSize size)
{
    auto& cache = store::globalCache();
    if (!cache.enabled()) {
        std::cerr << "error: store build requires --cache-dir=DIR\n";
        return 2;
    }
    const std::vector<std::string> names =
        kernels.empty() ? kernelNames() : kernels;
    for (const auto& name : names) {
        auto kernel = createKernel(name);
        WallTimer timer;
        kernel->prepare(size);
        std::cout << name << ": prepared in "
                  << formatF(timer.seconds(), 2) << " s\n";
    }
    std::cout << "cache " << cache.dir() << ": " << cache.hits()
              << " hits, " << cache.misses() << " misses\n";
    return 0;
}

/** `store inspect`: print the header and per-section TOC of a file. */
int
cmdStoreInspect(const std::string& path)
{
    auto reader = store::StoreReader::open(path, store::ReadMode::kStream);
    std::cout << "file:           " << path << '\n'
              << "format version: " << reader.formatVersion() << '\n'
              << "file bytes:     " << reader.fileBytes() << '\n'
              << "sections:       " << reader.sections().size() << "\n\n";
    Table table("Sections");
    table.setHeader({"name", "offset", "bytes", "xxhash64"});
    for (const auto& entry : reader.sections()) {
        std::ostringstream digest;
        digest << std::hex << entry.digest;
        table.newRow()
            .cell(entry.name)
            .cell(std::to_string(entry.offset))
            .cell(std::to_string(entry.size))
            .cell(digest.str());
    }
    table.print(std::cout);
    return 0;
}

/**
 * `store verify`: recompute every section digest of the given files
 * (or of all .gbs files under --cache-dir). Exit 1 if any fail.
 */
int
cmdStoreVerify(std::vector<std::string> paths)
{
    const auto& cache = store::globalCache();
    if (paths.empty() && cache.enabled()) {
        for (const auto& entry :
             std::filesystem::directory_iterator(cache.dir())) {
            if (entry.path().extension() == ".gbs") {
                paths.push_back(entry.path().string());
            }
        }
        std::sort(paths.begin(), paths.end());
    }
    if (paths.empty()) {
        std::cerr << "error: store verify needs <file.gbs>... or "
                     "--cache-dir=DIR\n";
        return 2;
    }
    int failures = 0;
    for (const auto& path : paths) {
        try {
            auto reader =
                store::StoreReader::open(path,
                                         store::ReadMode::kStream);
            reader.verifyAll();
            std::cout << path << ": OK ("
                      << reader.sections().size() << " sections, "
                      << reader.fileBytes() << " bytes)\n";
        } catch (const std::exception& e) {
            std::cout << path << ": FAILED — " << e.what() << '\n';
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

/**
 * `serve`: run a whole job list through the gb::serve Scheduler —
 * submit everything up front, drain, then report per-job and
 * server-level results. Exit 1 if any job failed or was rejected.
 */
int
cmdServe(const std::string& jobs_path, unsigned workers,
         size_t queue_depth, SchedulePolicy schedule)
{
    if (jobs_path.empty()) {
        std::cerr << "error: serve requires --jobs=FILE\n";
        return 2;
    }
    auto specs = serve::parseJobFile(jobs_path);
    // --schedule is the default policy for jobs whose line has no
    // schedule= key of its own.
    for (auto& spec : specs) {
        if (!spec.schedule_set) spec.schedule = schedule;
    }

    const auto& cache = store::globalCache();
    const u64 builds0 = cache.builds();
    const u64 hits0 = cache.hits();
    const u64 misses0 = cache.misses();
    const u64 waits0 = cache.flightWaits();

    serve::Scheduler::Config config;
    config.workers = workers;
    config.queue_depth = queue_depth;
    serve::Scheduler scheduler(std::move(config));

    WallTimer wall;
    std::vector<serve::JobHandle> handles;
    handles.reserve(specs.size());
    for (const auto& spec : specs) {
        handles.push_back(scheduler.submit(spec));
    }
    scheduler.drain();
    const double wall_seconds = wall.seconds();
    const auto stats = scheduler.stats();

    Table table("Serve results (" + std::to_string(handles.size()) +
                " jobs, " + std::to_string(scheduler.workers()) +
                " workers)");
    table.setHeader({"job", "kernel", "size", "engine", "t", "status",
                     "queue s", "prep s", "run s", "tasks/s"});
    bool any_bad = false;
    for (size_t i = 0; i < handles.size(); ++i) {
        const auto& handle = handles[i];
        const auto status = handle.status();
        const auto m = handle.metrics();
        const auto& spec = handle.spec();
        const double tasks_per_sec =
            m.best_run_seconds > 0.0
                ? static_cast<double>(m.tasks) / m.best_run_seconds
                : 0.0;
        table.newRow()
            .cell(std::to_string(i + 1))
            .cell(spec.kernel)
            .cell(datasetSizeName(spec.size))
            .cell(engineName(spec.engine))
            .cell(std::to_string(m.pool_threads ? m.pool_threads
                                                : spec.threads))
            .cell(serve::jobStatusName(status))
            .cellF(m.queue_seconds, 3)
            .cellF(m.prepare_seconds, 3)
            .cellF(m.run_seconds, 3)
            .cellF(tasks_per_sec, 1);
        g_sink.newRow("serve_job")
            .count("job", i + 1)
            .str("kernel", spec.kernel)
            .str("size", datasetSizeName(spec.size))
            .str("engine", engineName(spec.engine))
            .str("schedule", schedulePolicyName(spec.schedule))
            .count("threads", m.pool_threads ? m.pool_threads
                                             : spec.threads)
            .count("repeats", spec.repeats)
            .str("status", serve::jobStatusName(status))
            .num("queue_seconds", m.queue_seconds)
            .num("prepare_seconds", m.prepare_seconds)
            .num("run_seconds", m.run_seconds)
            .num("best_run_seconds", m.best_run_seconds)
            .count("tasks", m.tasks)
            .num("tasks_per_sec", tasks_per_sec);
        if (status != serve::JobStatus::kDone) {
            any_bad = true;
            std::cout << "job " << i + 1 << " ("
                      << spec.describe() << ") "
                      << serve::jobStatusName(status) << ": "
                      << handle.error() << '\n';
        }
    }
    table.print(std::cout);

    const double jobs_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(stats.completed) / wall_seconds
            : 0.0;
    std::cout << "served " << stats.completed << "/" << handles.size()
              << " jobs in " << formatF(wall_seconds, 3) << " s ("
              << formatF(jobs_per_sec, 2) << " jobs/s, peak "
              << stats.peak_workers_busy << "/" << stats.workers
              << " workers busy)\n";
    if (cache.enabled()) {
        std::cout << "artifact cache: "
                  << cache.builds() - builds0 << " builds, "
                  << cache.hits() - hits0 << " hits, "
                  << cache.misses() - misses0 << " misses, "
                  << cache.flightWaits() - waits0
                  << " single-flight waits\n";
    }
    g_sink.newRow("serve_summary")
        .count("jobs", handles.size())
        .count("completed", stats.completed)
        .count("failed", stats.failed)
        .count("cancelled", stats.cancelled)
        .count("rejected", stats.rejected)
        .num("wall_seconds", wall_seconds)
        .num("jobs_per_sec", jobs_per_sec)
        .count("workers", stats.workers)
        .count("peak_workers_busy", stats.peak_workers_busy)
        .count("cache_builds", cache.builds() - builds0)
        .count("cache_hits", cache.hits() - hits0)
        .count("cache_misses", cache.misses() - misses0)
        .count("cache_flight_waits", cache.flightWaits() - waits0);
    return any_bad ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "list") return cmdList();
        if (argc < 3) return usage();

        // Shared flag parsing for the remaining commands; positional
        // arguments (kernel name, store file paths) are collected.
        DatasetSize size = DatasetSize::kSmall;
        unsigned threads = 0;
        unsigned repeat = 3;
        Engine engine = Engine::kScalar;
        SchedulePolicy schedule = SchedulePolicy::kDynamic;
        std::string json_path;
        std::string jobs_path;
        unsigned workers = 0;
        size_t queue_depth = 64;
        std::vector<std::string> kernels;
        std::vector<std::string> positional;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--size=", 0) == 0) {
                size = parseSize(arg.substr(7));
            } else if (arg.rfind("--threads=", 0) == 0) {
                threads = static_cast<unsigned>(
                    std::stoul(arg.substr(10)));
            } else if (arg.rfind("--repeat=", 0) == 0) {
                repeat = static_cast<unsigned>(
                    std::stoul(arg.substr(9)));
            } else if (arg.rfind("--engine=", 0) == 0) {
                engine = parseEngine(arg.substr(9));
            } else if (arg.rfind("--schedule=", 0) == 0) {
                schedule = parseSchedulePolicy(arg.substr(11));
            } else if (arg.rfind("--cache-dir=", 0) == 0) {
                store::setCacheDir(arg.substr(12));
            } else if (arg.rfind("--json=", 0) == 0) {
                json_path = arg.substr(7);
            } else if (arg.rfind("--jobs=", 0) == 0) {
                jobs_path = arg.substr(7);
            } else if (arg.rfind("--workers=", 0) == 0) {
                workers = static_cast<unsigned>(
                    std::stoul(arg.substr(10)));
            } else if (arg.rfind("--queue-depth=", 0) == 0) {
                queue_depth = std::stoul(arg.substr(14));
            } else if (arg.rfind("--kernels=", 0) == 0) {
                std::istringstream list(arg.substr(10));
                std::string name;
                while (std::getline(list, name, ',')) {
                    if (!name.empty()) kernels.push_back(name);
                }
            } else if (arg.rfind("--", 0) == 0) {
                std::cerr << "error: unknown option: " << arg << '\n';
                return usage();
            } else {
                positional.push_back(arg);
            }
        }

        if (!json_path.empty()) {
            metrics::RunMeta meta;
            meta.experiment = command +
                              (positional.empty()
                                   ? std::string()
                                   : ":" + positional.front());
            meta.paper_ref = "genomicsbench CLI";
            meta.size = size == DatasetSize::kTiny    ? "tiny"
                        : size == DatasetSize::kSmall ? "small"
                                                      : "large";
            meta.threads = threads;
            meta.engine = engineName(engine);
            meta.simd_level =
                simd::simdLevelName(simd::activeSimdLevel());
            g_sink.open(json_path, std::move(meta));
        }

        if (command == "store") {
            if (positional.empty()) return usage();
            const std::string sub = positional.front();
            positional.erase(positional.begin());
            if (sub == "build") return cmdStoreBuild(kernels, size);
            if (sub == "inspect") {
                if (positional.size() != 1) return usage();
                return cmdStoreInspect(positional.front());
            }
            if (sub == "verify") {
                return cmdStoreVerify(std::move(positional));
            }
            return usage();
        }

        if (command == "serve") {
            if (!positional.empty()) return usage();
            return cmdServe(jobs_path, workers, queue_depth,
                            schedule);
        }

        if (positional.size() != 1) return usage();
        const std::string kernel = positional.front();
        if (command == "info") return cmdInfo(kernel);
        if (command == "run") {
            return cmdRun(kernel, size, threads, repeat, engine,
                          schedule);
        }
        if (command == "characterize") {
            return cmdCharacterize(kernel, size);
        }
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
