/**
 * @file
 * genomicsbench — command-line driver for the suite.
 *
 *   genomicsbench list
 *   genomicsbench info <kernel>
 *   genomicsbench run <kernel> [--size=S] [--threads=N] [--repeat=R]
 *                    [--schedule=dynamic|steal] [--cache-dir=DIR]
 *   genomicsbench characterize <kernel> [--size=S] [--cache-dir=DIR]
 *   genomicsbench store build [--cache-dir=DIR] [--size=S]
 *                    [--kernels=a,b,c]
 *   genomicsbench store inspect <file.gbs>
 *   genomicsbench store verify <file.gbs>... | --cache-dir=DIR
 *   genomicsbench serve --jobs=FILE | --listen=HOST:PORT
 *                    [--workers=N] [--queue-depth=K]
 *                    [--schedule=dynamic|steal]
 *                    [--cache-dir=DIR] [--json=FILE]
 *   genomicsbench client --connect=HOST:PORT --jobs=FILE
 *                    [--wait-timeout=S] [--drain]
 *   genomicsbench trace inspect <trace.json> [--top=N]
 *
 * `run` times the kernel (wall clock, tasks/s); `characterize` prints
 * the operation mix, cache behaviour and top-down attribution for one
 * kernel — the per-kernel view of what the bench_* binaries sweep.
 * The `store` subcommands manage the gb::store artifact cache that
 * --cache-dir consults (see docs/store-format.md). `serve` runs a
 * whole job list through the gb::serve scheduler (docs/serve.md):
 * batch mode (--jobs) drains a file, network mode (--listen) accepts
 * jobs over TCP until DRAIN or SIGTERM. `client` drives a job file
 * against a network server. `run` and `serve` accept --trace=FILE to
 * record a gb::trace timeline (Perfetto-loadable Chrome trace JSON);
 * `trace inspect` summarizes such a file (docs/tracing.md).
 */
#include <algorithm>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/cache_sim.h"
#include "arch/topdown.h"
#include "core/benchmark.h"
#include "metrics/metrics_sink.h"
#include "metrics/perf_counters.h"
#include "metrics/pooled_counters.h"
#include "net/client.h"
#include "net/net.h"
#include "net/server.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "simd/simd.h"
#include "store/cache.h"
#include "store/container.h"
#include "trace/trace.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gb;

/** Armed by --json=FILE; rows are dropped until then. */
metrics::MetricsSink g_sink;

/** Print a table and mirror its rows into the metrics sink. */
void
report(const Table& table)
{
    table.print(std::cout);
    metrics::emitTable(g_sink, table);
}

/**
 * Run `fn` with gb::trace armed when --trace=FILE was given: start
 * the collector, run the command, stop, export. Export happens after
 * every worker quiesced (commands drain/join before returning) and
 * even when the command fails — a trace of the failing run is the
 * most useful kind.
 */
int
runTraced(const std::string& trace_path, const std::function<int()>& fn)
{
    if (trace_path.empty()) return fn();
    trace::start();
    int rc = 1;
    try {
        rc = fn();
    } catch (...) {
        trace::stop();
        throw;
    }
    trace::stop();
    const auto st = trace::writeChromeTraceFile(trace_path);
    std::cout << "trace: " << st.events << " events from " << st.rings
              << " threads (" << st.dropped << " dropped) -> "
              << trace_path << '\n';
    return rc;
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  genomicsbench list\n"
           "  genomicsbench info <kernel>\n"
           "  genomicsbench run <kernel> [--size=tiny|small|large]"
           " [--threads=N] [--repeat=R] [--engine=scalar|simd]"
           " [--schedule=dynamic|steal] [--cache-dir=DIR]"
           " [--json=FILE]\n"
           "  genomicsbench characterize <kernel>"
           " [--size=tiny|small|large] [--cache-dir=DIR]"
           " [--json=FILE]\n"
           "  genomicsbench store build [--cache-dir=DIR]"
           " [--size=S] [--kernels=a,b,c]\n"
           "  genomicsbench store inspect <file.gbs>\n"
           "  genomicsbench store verify <file.gbs>... |"
           " --cache-dir=DIR\n"
           "  genomicsbench serve --jobs=FILE | --listen=HOST:PORT"
           " [--workers=N] [--queue-depth=K]"
           " [--schedule=dynamic|steal]"
           " [--cache-dir=DIR] [--json=FILE] [--trace=FILE]\n"
           "  genomicsbench client --connect=HOST:PORT --jobs=FILE"
           " [--wait-timeout=S] [--drain]\n"
           "  genomicsbench trace inspect <trace.json> [--top=N]\n"
           "(run also accepts --trace=FILE; see docs/tracing.md)\n";
    return 2;
}

DatasetSize
parseSize(const std::string& value)
{
    if (value == "tiny") return DatasetSize::kTiny;
    if (value == "small") return DatasetSize::kSmall;
    if (value == "large") return DatasetSize::kLarge;
    throw InputError("unknown size: " + value);
}

int
cmdList()
{
    Table table("GenomicsBench kernels");
    table.setHeader({"kernel", "source tool", "motif", "target"});
    for (const auto& name : kernelNames()) {
        const auto kernel = createKernel(name);
        const auto& info = kernel->info();
        table.newRow()
            .cell(info.name)
            .cell(info.source_tool)
            .cell(info.motif)
            .cell(info.gpu ? "GPU" : "CPU");
    }
    table.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string& name)
{
    const auto kernel = createKernel(name);
    const auto& info = kernel->info();
    std::cout << "kernel:       " << info.name << '\n'
              << "source tool:  " << info.source_tool << '\n'
              << "motif:        " << info.motif << '\n'
              << "granularity:  " << info.granularity << '\n'
              << "work unit:    " << info.work_unit << '\n'
              << "compute:      "
              << (info.regular ? "regular" : "irregular") << '\n'
              << "paper target: " << (info.gpu ? "GPU" : "CPU")
              << '\n';
    return 0;
}

int
cmdRun(const std::string& name, DatasetSize size, unsigned threads,
       unsigned repeat, Engine engine, SchedulePolicy schedule)
{
    auto kernel = createKernel(name);
    kernel->setEngine(engine);
    WallTimer prep_timer;
    {
        trace::Span span(trace::enabled()
                             ? trace::internName("prepare:" + name)
                             : 0u,
                         trace::Category::kKernel);
        kernel->prepare(size);
    }
    std::cout << "prepared in " << formatF(prep_timer.seconds(), 2)
              << " s";
    const auto& cache = store::globalCache();
    if (cache.enabled()) {
        std::cout << " (artifact cache: " << cache.hits() << " hit"
                  << (cache.hits() == 1 ? "" : "s") << ", "
                  << cache.misses() << " miss"
                  << (cache.misses() == 1 ? "" : "es") << ")";
    }
    std::cout << '\n';

    ThreadPool pool(threads);
    pool.setSchedule(schedule);
    // One counter group per pool thread, summed per repeat, so the
    // reported counters cover the whole run at any thread count.
    metrics::PooledCounters counters(pool);
    double best = 1e300;
    u64 tasks = 0;
    metrics::PerfSample best_sample;
    const u32 repeat_name =
        trace::enabled() ? trace::internName("repeat:" + name) : 0u;
    for (unsigned r = 0; r < repeat; ++r) {
        trace::Span span(repeat_name, trace::Category::kKernel, r);
        WallTimer timer;
        counters.start();
        tasks = kernel->run(pool);
        const auto sample = counters.stopAggregate();
        const double seconds = timer.seconds();
        if (seconds < best) {
            best = seconds;
            best_sample = sample;
        }
        std::cout << "run " << r + 1 << ": "
                  << formatF(seconds, 3) << " s, " << tasks
                  << " tasks ("
                  << formatF(static_cast<double>(tasks) / seconds, 1)
                  << " tasks/s)\n";
        g_sink.newRow("run")
            .str("kernel", name)
            .str("schedule", schedulePolicyName(schedule))
            .count("repeat", r + 1)
            .num("seconds", seconds)
            .count("tasks", tasks)
            .num("tasks_per_sec",
                 static_cast<double>(tasks) / seconds);
    }
    std::cout << "best: " << formatF(best, 3) << " s with "
              << pool.numThreads() << " threads\n";
    // Measured counters for the best repeat, aggregated across every
    // pool rank (one perf group per thread).
    if (best_sample.available) {
        // Individual counters can still be missing (negative).
        const auto fmt = [](double v) {
            return v < 0.0 ? std::string("n/a")
                           : formatCount(static_cast<u64>(v));
        };
        std::cout << "counters (whole run, " << counters.ranks()
                  << (counters.ranks() == 1 ? " rank" : " ranks")
                  << "): ipc " << formatF(best_sample.ipc(), 2)
                  << ", cycles " << fmt(best_sample.cycles)
                  << ", LLC misses " << fmt(best_sample.llc_misses)
                  << ", branch misses "
                  << fmt(best_sample.branch_misses) << '\n';
    } else {
        std::cout << "counters unavailable ("
                  << best_sample.unavailable_reason << ")\n";
    }
    g_sink.newRow("run_best")
        .str("kernel", name)
        .str("schedule", schedulePolicyName(schedule))
        .num("seconds", best)
        .count("threads", pool.numThreads())
        .flag("counters_available", best_sample.available)
        .num("ipc", best_sample.ipc())
        .num("cycles", best_sample.cycles)
        .num("instructions", best_sample.instructions)
        .num("llc_misses", best_sample.llc_misses)
        .num("branch_misses", best_sample.branch_misses);
    return 0;
}

int
cmdCharacterize(const std::string& name, DatasetSize size)
{
    auto kernel = createKernel(name);
    kernel->prepare(size);

    CacheSim cache;
    CharProbe probe(&cache);
    WallTimer timer;
    const u64 tasks = kernel->characterize(probe);
    std::cout << "characterized " << tasks << " tasks in "
              << formatF(timer.seconds(), 2) << " s (simulated)\n\n";

    const OpCounts& counts = probe.counts();
    Table mix("Operation mix");
    mix.setHeader({"class", "count", "fraction"});
    for (OpClass c :
         {OpClass::kIntAlu, OpClass::kFpAlu, OpClass::kVecAlu,
          OpClass::kLoad, OpClass::kStore, OpClass::kBranch}) {
        mix.newRow()
            .cell(opClassName(c))
            .cell(formatCount(counts[c]))
            .cellF(counts.fraction(c) * 100.0, 1);
    }
    report(mix);

    Table mem("Memory behaviour");
    mem.setHeader({"metric", "value"});
    mem.newRow().cell("L1 miss rate").cellF(
        cache.l1Stats().missRate() * 100.0, 2);
    mem.newRow().cell("L2 miss rate").cellF(
        cache.l2Stats().missRate() * 100.0, 2);
    mem.newRow().cell("LLC miss rate").cellF(
        cache.llcStats().missRate() * 100.0, 2);
    mem.newRow().cell("DRAM bytes").cell(
        formatCount(cache.dramStats().bytes));
    mem.newRow().cell("DRAM row-miss rate").cellF(
        cache.dramStats().rowMissRate() * 100.0, 1);
    mem.newRow().cell("BPKI").cellF(
        static_cast<double>(cache.dramStats().bytes) /
            (static_cast<double>(counts.total()) / 1000.0),
        2);
    report(mem);

    const auto td = topDownAnalyze(counts, cache, probe.mispredicts());
    Table topdown("Top-down attribution");
    topdown.setHeader({"slot class", "percent"});
    topdown.newRow().cell("retiring").cellF(td.retiring * 100.0, 1);
    topdown.newRow().cell("front-end").cellF(
        td.frontend_bound * 100.0, 1);
    topdown.newRow().cell("bad speculation").cellF(
        td.bad_speculation * 100.0, 1);
    topdown.newRow().cell("memory bound").cellF(
        td.backend_memory * 100.0, 1);
    topdown.newRow().cell("core bound").cellF(
        td.backend_core * 100.0, 1);
    report(topdown);
    return 0;
}

/**
 * `store build`: run prepare() for the selected kernels with the
 * cache enabled, so every cache-aware artifact is materialized.
 */
int
cmdStoreBuild(const std::vector<std::string>& kernels, DatasetSize size)
{
    auto& cache = store::globalCache();
    if (!cache.enabled()) {
        std::cerr << "error: store build requires --cache-dir=DIR\n";
        return 2;
    }
    const std::vector<std::string> names =
        kernels.empty() ? kernelNames() : kernels;
    for (const auto& name : names) {
        auto kernel = createKernel(name);
        WallTimer timer;
        kernel->prepare(size);
        std::cout << name << ": prepared in "
                  << formatF(timer.seconds(), 2) << " s\n";
    }
    std::cout << "cache " << cache.dir() << ": " << cache.hits()
              << " hits, " << cache.misses() << " misses\n";
    return 0;
}

/** `store inspect`: print the header and per-section TOC of a file. */
int
cmdStoreInspect(const std::string& path)
{
    auto reader = store::StoreReader::open(path, store::ReadMode::kStream);
    std::cout << "file:           " << path << '\n'
              << "format version: " << reader.formatVersion() << '\n'
              << "file bytes:     " << reader.fileBytes() << '\n'
              << "sections:       " << reader.sections().size() << "\n\n";
    Table table("Sections");
    table.setHeader({"name", "offset", "bytes", "xxhash64"});
    for (const auto& entry : reader.sections()) {
        std::ostringstream digest;
        digest << std::hex << entry.digest;
        table.newRow()
            .cell(entry.name)
            .cell(std::to_string(entry.offset))
            .cell(std::to_string(entry.size))
            .cell(digest.str());
    }
    table.print(std::cout);
    return 0;
}

/**
 * `store verify`: recompute every section digest of the given files
 * (or of all .gbs files under --cache-dir). Exit 1 if any fail.
 */
int
cmdStoreVerify(std::vector<std::string> paths)
{
    const auto& cache = store::globalCache();
    if (paths.empty() && cache.enabled()) {
        for (const auto& entry :
             std::filesystem::directory_iterator(cache.dir())) {
            if (entry.path().extension() == ".gbs") {
                paths.push_back(entry.path().string());
            }
        }
        std::sort(paths.begin(), paths.end());
    }
    if (paths.empty()) {
        std::cerr << "error: store verify needs <file.gbs>... or "
                     "--cache-dir=DIR\n";
        return 2;
    }
    int failures = 0;
    for (const auto& path : paths) {
        try {
            auto reader =
                store::StoreReader::open(path,
                                         store::ReadMode::kStream);
            reader.verifyAll();
            std::cout << path << ": OK ("
                      << reader.sections().size() << " sections, "
                      << reader.fileBytes() << " bytes)\n";
        } catch (const std::exception& e) {
            std::cout << path << ": FAILED — " << e.what() << '\n';
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

/** Artifact-cache counters at serve start, for delta reporting. */
struct CacheBaseline
{
    u64 builds = 0, hits = 0, misses = 0, waits = 0;

    static CacheBaseline
    snapshot()
    {
        const auto& cache = store::globalCache();
        return {cache.builds(), cache.hits(), cache.misses(),
                cache.flightWaits()};
    }
};

/**
 * Per-job table + `serve_job` metrics rows + summary + `serve_summary`
 * row, shared by the batch (--jobs) and network (--listen) serve
 * modes. Returns true when any job ended in a non-done state.
 */
bool
reportServeJobs(
    const std::vector<std::pair<u64, serve::JobHandle>>& jobs,
    const serve::Scheduler& scheduler, double wall_seconds,
    const CacheBaseline& base)
{
    const auto stats = scheduler.stats();
    const auto& cache = store::globalCache();
    Table table("Serve results (" + std::to_string(jobs.size()) +
                " jobs, " + std::to_string(scheduler.workers()) +
                " workers)");
    table.setHeader({"job", "kernel", "size", "engine", "prio", "t",
                     "status", "queue s", "prep s", "run s",
                     "tasks/s"});
    bool any_bad = false;
    for (const auto& [id, handle] : jobs) {
        const auto status = handle.status();
        const auto m = handle.metrics();
        const auto& spec = handle.spec();
        const double tasks_per_sec =
            m.best_run_seconds > 0.0
                ? static_cast<double>(m.tasks) / m.best_run_seconds
                : 0.0;
        table.newRow()
            .cell(std::to_string(id))
            .cell(spec.kernel)
            .cell(datasetSizeName(spec.size))
            .cell(engineName(spec.engine))
            .cell(serve::priorityName(spec.priority))
            .cell(std::to_string(m.pool_threads ? m.pool_threads
                                                : spec.threads))
            .cell(serve::jobStatusName(status))
            .cellF(m.queue_seconds, 3)
            .cellF(m.prepare_seconds, 3)
            .cellF(m.run_seconds, 3)
            .cellF(tasks_per_sec, 1);
        g_sink.newRow("serve_job")
            .count("job", id)
            .str("kernel", spec.kernel)
            .str("size", datasetSizeName(spec.size))
            .str("engine", engineName(spec.engine))
            .str("schedule", schedulePolicyName(spec.schedule))
            .str("priority", serve::priorityName(spec.priority))
            .count("threads", m.pool_threads ? m.pool_threads
                                             : spec.threads)
            .count("repeats", spec.repeats)
            .count("repeats_completed", m.repeats_completed)
            .count("dispatch_seq", m.dispatch_seq)
            .str("status", serve::jobStatusName(status))
            .num("queue_seconds", m.queue_seconds)
            .num("prepare_seconds", m.prepare_seconds)
            .num("run_seconds", m.run_seconds)
            .num("best_run_seconds", m.best_run_seconds)
            .count("tasks", m.tasks)
            .num("tasks_per_sec", tasks_per_sec);
        if (status != serve::JobStatus::kDone) {
            any_bad = true;
            std::cout << "job " << id << " (" << spec.describe()
                      << ") " << serve::jobStatusName(status) << ": "
                      << handle.error() << '\n';
        }
    }
    table.print(std::cout);

    const double jobs_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(stats.completed) / wall_seconds
            : 0.0;
    std::cout << "served " << stats.completed << "/" << jobs.size()
              << " jobs in " << formatF(wall_seconds, 3) << " s ("
              << formatF(jobs_per_sec, 2) << " jobs/s, peak "
              << stats.peak_workers_busy << "/" << stats.workers
              << " workers busy)\n";
    if (cache.enabled()) {
        std::cout << "artifact cache: "
                  << cache.builds() - base.builds << " builds, "
                  << cache.hits() - base.hits << " hits, "
                  << cache.misses() - base.misses << " misses, "
                  << cache.flightWaits() - base.waits
                  << " single-flight waits\n";
    }
    const auto& lat = stats.latency;
    if (lat.jobs > 0) {
        std::cout << "latency (" << lat.jobs
                  << " jobs, p50/p95/p99 ms): queue_wait "
                  << formatF(lat.queue_wait.p50_ms, 2) << "/"
                  << formatF(lat.queue_wait.p95_ms, 2) << "/"
                  << formatF(lat.queue_wait.p99_ms, 2) << ", e2e "
                  << formatF(lat.end_to_end.p50_ms, 2) << "/"
                  << formatF(lat.end_to_end.p95_ms, 2) << "/"
                  << formatF(lat.end_to_end.p99_ms, 2) << '\n';
    }
    g_sink.newRow("serve_summary")
        .count("jobs", jobs.size())
        .count("completed", stats.completed)
        .count("failed", stats.failed)
        .count("cancelled", stats.cancelled)
        .count("rejected", stats.rejected)
        .num("wall_seconds", wall_seconds)
        .num("jobs_per_sec", jobs_per_sec)
        .count("workers", stats.workers)
        .count("peak_workers_busy", stats.peak_workers_busy)
        .count("cache_builds", cache.builds() - base.builds)
        .count("cache_hits", cache.hits() - base.hits)
        .count("cache_misses", cache.misses() - base.misses)
        .count("cache_flight_waits", cache.flightWaits() - base.waits)
        .num("queue_wait_p50_ms", lat.queue_wait.p50_ms)
        .num("queue_wait_p95_ms", lat.queue_wait.p95_ms)
        .num("queue_wait_p99_ms", lat.queue_wait.p99_ms)
        .num("e2e_p50_ms", lat.end_to_end.p50_ms)
        .num("e2e_p95_ms", lat.end_to_end.p95_ms)
        .num("e2e_p99_ms", lat.end_to_end.p99_ms);
    return any_bad;
}

/**
 * `serve --jobs`: run a whole job list through the gb::serve
 * Scheduler — submit everything up front, drain, then report per-job
 * and server-level results. Exit 1 if any job failed or was rejected.
 */
int
cmdServe(const std::string& jobs_path, unsigned workers,
         size_t queue_depth, SchedulePolicy schedule)
{
    auto specs = serve::parseJobFile(jobs_path);
    // --schedule is the default policy for jobs whose line has no
    // schedule= key of its own.
    for (auto& spec : specs) {
        if (!spec.schedule_set) spec.schedule = schedule;
    }

    const auto base = CacheBaseline::snapshot();
    serve::Scheduler::Config config;
    config.workers = workers;
    config.queue_depth = queue_depth;
    serve::Scheduler scheduler(std::move(config));

    WallTimer wall;
    std::vector<std::pair<u64, serve::JobHandle>> jobs;
    jobs.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        jobs.emplace_back(i + 1, scheduler.submit(specs[i]));
    }
    scheduler.drain();
    const bool any_bad =
        reportServeJobs(jobs, scheduler, wall.seconds(), base);
    return any_bad ? 1 : 0;
}

/** SIGTERM/SIGINT set this; the --listen loop polls it. */
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void
onShutdownSignal(int)
{
    g_shutdown_signal = 1;
}

/**
 * `serve --listen=HOST:PORT`: the network front-end. Jobs arrive over
 * TCP (see docs/serve.md, "Network protocol"); the process serves
 * until a client issues DRAIN or it receives SIGTERM/SIGINT, then
 * drains gracefully and reports exactly like batch mode.
 */
int
cmdServeListen(const std::string& listen_spec, unsigned workers,
               size_t queue_depth, SchedulePolicy schedule)
{
    const net::HostPort hostport = net::parseHostPort(listen_spec);

    const auto base = CacheBaseline::snapshot();
    serve::Scheduler::Config config;
    config.workers = workers;
    config.queue_depth = queue_depth;
    serve::Scheduler scheduler(std::move(config));

    net::ServerConfig server_config;
    server_config.host = hostport.host;
    server_config.port = hostport.port;
    server_config.spec_defaults = [schedule](serve::JobSpec& spec) {
        if (!spec.schedule_set) spec.schedule = schedule;
    };
    net::Server server(&scheduler, server_config);
    // check.sh (and humans) scrape this line for the resolved port —
    // --listen=HOST:0 binds an ephemeral one.
    std::cout << "serving on " << hostport.host << ":"
              << server.port() << " (" << scheduler.workers()
              << " workers, queue depth " << queue_depth << ")\n"
              << std::flush;

    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);
    WallTimer wall;
    while (!server.waitShutdownRequestedFor(0.2)) {
        if (g_shutdown_signal) {
            std::cout << "signal received, draining\n";
            break;
        }
    }
    // Idempotent against the DRAIN-verb path, which already drained
    // on a session thread.
    scheduler.drain();
    server.stop();
    const double wall_seconds = wall.seconds();

    const bool any_bad = reportServeJobs(server.jobs(), scheduler,
                                         wall_seconds, base);
    return any_bad ? 1 : 0;
}

/**
 * `trace inspect`: summarize an exported trace file — span counts,
 * per-category totals, per-name aggregates and the top-N longest
 * individual spans.
 */
int
cmdTraceInspect(const std::string& path, size_t top_n)
{
    const auto parsed = trace::parseChromeTraceFile(path);
    const auto s = trace::summarize(parsed, top_n);
    std::cout << "file:     " << path << '\n'
              << "events:   " << s.spans << " spans, " << s.instants
              << " instants (" << s.dropped_events
              << " dropped at capture, " << s.rings << " threads)\n"
              << "extent:   " << formatF(s.extent_us / 1000.0, 3)
              << " ms\n\n";

    Table categories("Per-category span totals");
    categories.setHeader({"category", "spans", "total ms", "max ms"});
    for (const auto& agg : s.by_category) {
        categories.newRow()
            .cell(agg.category)
            .cell(std::to_string(agg.count))
            .cellF(agg.total_us / 1000.0, 3)
            .cellF(agg.max_us / 1000.0, 3);
    }
    report(categories);

    Table names("Per-name span totals");
    names.setHeader({"name", "category", "count", "total ms",
                     "max ms"});
    size_t shown = 0;
    for (const auto& agg : s.by_name) {
        if (shown++ >= top_n) break;
        names.newRow()
            .cell(agg.name)
            .cell(agg.category)
            .cell(std::to_string(agg.count))
            .cellF(agg.total_us / 1000.0, 3)
            .cellF(agg.max_us / 1000.0, 3);
    }
    report(names);

    Table longest("Top " + std::to_string(s.longest.size()) +
                  " longest spans");
    longest.setHeader({"name", "category", "job", "thread", "start ms",
                       "dur ms"});
    for (const auto& ev : s.longest) {
        longest.newRow()
            .cell(ev.name)
            .cell(ev.category)
            .cell(std::to_string(ev.job_id))
            .cell(std::to_string(ev.tid))
            .cellF(ev.ts_us / 1000.0, 3)
            .cellF(ev.dur_us / 1000.0, 3);
    }
    report(longest);
    return 0;
}

/**
 * `client`: drive a job file against a live `serve --listen` server.
 * Exit 0 only when every submitted job completed.
 */
int
cmdClient(const std::string& connect_spec,
          const std::string& jobs_path, bool drain,
          double wait_timeout)
{
    if (connect_spec.empty() || jobs_path.empty()) {
        std::cerr << "error: client requires --connect=HOST:PORT "
                     "and --jobs=FILE\n";
        return 2;
    }
    const net::HostPort hostport = net::parseHostPort(connect_spec);
    net::ClientOptions options;
    options.host = hostport.host;
    options.port = hostport.port;
    options.jobs_path = jobs_path;
    options.drain = drain;
    options.wait_seconds = wait_timeout;
    return net::runClient(options, std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "list") return cmdList();
        if (argc < 3) return usage();

        // Shared flag parsing for the remaining commands; positional
        // arguments (kernel name, store file paths) are collected.
        DatasetSize size = DatasetSize::kSmall;
        unsigned threads = 0;
        unsigned repeat = 3;
        Engine engine = Engine::kScalar;
        SchedulePolicy schedule = SchedulePolicy::kDynamic;
        std::string json_path;
        std::string trace_path;
        unsigned top_n = 10;
        std::string jobs_path;
        std::string listen_spec;
        std::string connect_spec;
        bool drain = false;
        double wait_timeout = -1.0;
        unsigned workers = 0;
        size_t queue_depth = 64;
        std::vector<std::string> kernels;
        std::vector<std::string> positional;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--size=", 0) == 0) {
                size = parseSize(arg.substr(7));
            } else if (arg.rfind("--threads=", 0) == 0) {
                threads = static_cast<unsigned>(
                    std::stoul(arg.substr(10)));
            } else if (arg.rfind("--repeat=", 0) == 0) {
                repeat = static_cast<unsigned>(
                    std::stoul(arg.substr(9)));
            } else if (arg.rfind("--engine=", 0) == 0) {
                engine = parseEngine(arg.substr(9));
            } else if (arg.rfind("--schedule=", 0) == 0) {
                schedule = parseSchedulePolicy(arg.substr(11));
            } else if (arg.rfind("--cache-dir=", 0) == 0) {
                store::setCacheDir(arg.substr(12));
            } else if (arg.rfind("--json=", 0) == 0) {
                json_path = arg.substr(7);
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = arg.substr(8);
                requireInput(!trace_path.empty(),
                             "--trace needs a file path");
            } else if (arg.rfind("--top=", 0) == 0) {
                top_n = static_cast<unsigned>(
                    std::stoul(arg.substr(6)));
            } else if (arg.rfind("--jobs=", 0) == 0) {
                jobs_path = arg.substr(7);
            } else if (arg.rfind("--listen=", 0) == 0) {
                listen_spec = arg.substr(9);
            } else if (arg.rfind("--connect=", 0) == 0) {
                connect_spec = arg.substr(10);
            } else if (arg == "--drain") {
                drain = true;
            } else if (arg.rfind("--wait-timeout=", 0) == 0) {
                wait_timeout = std::stod(arg.substr(15));
            } else if (arg.rfind("--workers=", 0) == 0) {
                workers = static_cast<unsigned>(
                    std::stoul(arg.substr(10)));
            } else if (arg.rfind("--queue-depth=", 0) == 0) {
                queue_depth = std::stoul(arg.substr(14));
            } else if (arg.rfind("--kernels=", 0) == 0) {
                std::istringstream list(arg.substr(10));
                std::string name;
                while (std::getline(list, name, ',')) {
                    if (!name.empty()) kernels.push_back(name);
                }
            } else if (arg.rfind("--", 0) == 0) {
                std::cerr << "error: unknown option: " << arg << '\n';
                return usage();
            } else {
                positional.push_back(arg);
            }
        }

        if (!json_path.empty()) {
            metrics::RunMeta meta;
            meta.experiment = command +
                              (positional.empty()
                                   ? std::string()
                                   : ":" + positional.front());
            meta.paper_ref = "genomicsbench CLI";
            meta.size = size == DatasetSize::kTiny    ? "tiny"
                        : size == DatasetSize::kSmall ? "small"
                                                      : "large";
            meta.threads = threads;
            meta.engine = engineName(engine);
            meta.simd_level =
                simd::simdLevelName(simd::activeSimdLevel());
            g_sink.open(json_path, std::move(meta));
        }

        if (command == "store") {
            if (positional.empty()) return usage();
            const std::string sub = positional.front();
            positional.erase(positional.begin());
            if (sub == "build") return cmdStoreBuild(kernels, size);
            if (sub == "inspect") {
                if (positional.size() != 1) return usage();
                return cmdStoreInspect(positional.front());
            }
            if (sub == "verify") {
                return cmdStoreVerify(std::move(positional));
            }
            return usage();
        }

        if (command == "trace") {
            if (positional.size() != 2 ||
                positional.front() != "inspect") {
                return usage();
            }
            return cmdTraceInspect(positional.back(), top_n);
        }

        if (command == "serve") {
            if (!positional.empty()) return usage();
            if (!listen_spec.empty() && !jobs_path.empty()) {
                std::cerr << "error: serve takes --jobs=FILE or "
                             "--listen=HOST:PORT, not both\n";
                return 2;
            }
            if (!listen_spec.empty()) {
                return runTraced(trace_path, [&] {
                    return cmdServeListen(listen_spec, workers,
                                          queue_depth, schedule);
                });
            }
            if (jobs_path.empty()) {
                std::cerr << "error: serve requires --jobs=FILE or "
                             "--listen=HOST:PORT\n";
                return 2;
            }
            return runTraced(trace_path, [&] {
                return cmdServe(jobs_path, workers, queue_depth,
                                schedule);
            });
        }

        if (command == "client") {
            if (!positional.empty()) return usage();
            return cmdClient(connect_spec, jobs_path, drain,
                             wait_timeout);
        }

        if (positional.size() != 1) return usage();
        const std::string kernel = positional.front();
        if (command == "info") return cmdInfo(kernel);
        if (command == "run") {
            return runTraced(trace_path, [&] {
                return cmdRun(kernel, size, threads, repeat, engine,
                              schedule);
            });
        }
        if (command == "characterize") {
            return cmdCharacterize(kernel, size);
        }
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
